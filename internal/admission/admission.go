// Package admission implements the overload-protection primitives of
// the streaming landscape service: per-client token-bucket rate
// limiting, a CoDel-style adaptive load shedder driven by smoothed
// queue delay, and the typed Rejection error that carries an admission
// decision (reason + suggested retry-after) up to the HTTP layer, where
// it maps to 429/503 with a Retry-After header instead of blocking the
// connection.
//
// Everything here is deterministic under injected inputs: the limiter
// takes an injectable clock, and the shedder draws from a seeded PRNG,
// so the overload harness (internal/loadgen) and the unit tests
// reproduce admission decisions exactly.
package admission

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Reason is the admission-rejection taxonomy. Each value is the slug
// surfaced in Stats.Admission.RejectedBatches and in HTTP error bodies.
type Reason string

const (
	// ReasonRateLimit: the client's token bucket is empty — it exceeded
	// its configured events/sec budget. Maps to 429.
	ReasonRateLimit Reason = "rate-limit"
	// ReasonDeadline: the ingest queue stayed full past the admission
	// deadline. Maps to 429 — the service is alive, retry later.
	ReasonDeadline Reason = "deadline"
	// ReasonQueueFull: the global waiter budget is exhausted — too many
	// producers are already blocked on the queue. Maps to 503.
	ReasonQueueFull Reason = "queue-full"
	// ReasonShed: the adaptive shedder dropped the batch because the
	// smoothed queue delay exceeds the target. Maps to 503.
	ReasonShed Reason = "shed"
)

// Rejection is a typed admission refusal: why, and when a retry is
// worth attempting. It is returned as an error by the service's ingest
// path and unwrapped by the HTTP layer via AsRejection.
type Rejection struct {
	Reason     Reason
	RetryAfter time.Duration
}

func (r *Rejection) Error() string {
	return fmt.Sprintf("admission: rejected (%s), retry after %s", r.Reason, r.RetryAfter.Round(time.Millisecond))
}

// AsRejection unwraps an admission rejection from an error chain.
func AsRejection(err error) (*Rejection, bool) {
	var rej *Rejection
	if errors.As(err, &rej) {
		return rej, true
	}
	return nil, false
}

// Config bundles every overload-protection knob. The zero value
// disables every mechanism: no rate limiting, no deadline (producers
// block indefinitely, the pre-admission behavior), no shedding, no
// degraded mode — the layer is strictly additive.
type Config struct {
	// RatePerSec is the per-client admission budget in events per
	// second; 0 disables rate limiting.
	RatePerSec float64
	// Burst is the token-bucket capacity in events; 0 selects
	// max(RatePerSec, 1). A batch larger than Burst can never be
	// admitted by a rate-limited client.
	Burst int
	// Deadline bounds how long an ingest may wait for queue space
	// before it is rejected with ReasonDeadline; 0 blocks indefinitely.
	Deadline time.Duration
	// ShedTarget is the smoothed queue-delay target: above it, incoming
	// batches are shed probabilistically, with probability growing
	// linearly in the overshoot. 0 disables shedding.
	ShedTarget time.Duration
	// DegradeTarget is the smoothed queue-delay threshold for degraded
	// mode (EPM rebuild and B verification epochs deferred); the service
	// exits degraded mode once the delay falls below half the target.
	// 0 disables degraded mode.
	DegradeTarget time.Duration
	// MaxWaiters bounds the producers simultaneously blocked on the
	// ingest queue; beyond it, admission fails fast with
	// ReasonQueueFull. 0 is unlimited.
	MaxWaiters int
	// Seed drives the shedder's PRNG; 0 selects 1.
	Seed uint64
	// MaxClients bounds the limiter's bucket table; 0 selects 4096.
	MaxClients int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.RatePerSec < 0 || math.IsNaN(c.RatePerSec) || math.IsInf(c.RatePerSec, 0) {
		return fmt.Errorf("admission: RatePerSec %v is invalid", c.RatePerSec)
	}
	if c.Burst < 0 {
		return fmt.Errorf("admission: Burst %d is negative", c.Burst)
	}
	if c.Deadline < 0 || c.ShedTarget < 0 || c.DegradeTarget < 0 {
		return fmt.Errorf("admission: negative duration knob: %+v", c)
	}
	if c.MaxWaiters < 0 || c.MaxClients < 0 {
		return fmt.Errorf("admission: negative budget knob: %+v", c)
	}
	return nil
}

// Enabled reports whether any overload-protection mechanism is on.
func (c Config) Enabled() bool {
	return c.RatePerSec > 0 || c.Deadline > 0 || c.ShedTarget > 0 ||
		c.DegradeTarget > 0 || c.MaxWaiters > 0
}

// Limiter is a per-client token-bucket rate limiter. Buckets refill
// continuously at rate tokens/sec up to burst; a client key is whatever
// the caller derives (the HTTP layer uses the X-Client-ID header,
// falling back to the remote IP).
type Limiter struct {
	rate       float64
	burst      float64
	maxClients int
	now        func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter. now is injectable for tests; nil selects
// time.Now. A rate of 0 yields a nil limiter (disabled).
func NewLimiter(rate float64, burst, maxClients int, now func() time.Time) *Limiter {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = int(math.Max(rate, 1))
	}
	if maxClients <= 0 {
		maxClients = 4096
	}
	if now == nil {
		now = time.Now
	}
	return &Limiter{
		rate:       rate,
		burst:      float64(burst),
		maxClients: maxClients,
		now:        now,
		buckets:    make(map[string]*bucket),
	}
}

// Admit spends n tokens from the client's bucket, admitting the batch
// when they are available and returning a ReasonRateLimit rejection —
// with the time until the deficit refills — otherwise. A nil limiter
// admits everything.
func (l *Limiter) Admit(client string, n int) *Rejection {
	if l == nil || n <= 0 {
		return nil
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[client]
	if !ok {
		l.prune()
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
	}
	b.last = now
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		return nil
	}
	deficit := need - b.tokens
	return &Rejection{
		Reason:     ReasonRateLimit,
		RetryAfter: time.Duration(deficit / l.rate * float64(time.Second)),
	}
}

// prune evicts fully refilled (idle) buckets once the table exceeds its
// cap, so a churn of client keys cannot grow memory without bound.
// Callers hold the mutex.
func (l *Limiter) prune() {
	if len(l.buckets) < l.maxClients {
		return
	}
	now := l.now()
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
}

// Clients reports the live bucket count.
func (l *Limiter) Clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// Shedder decides, per incoming batch, whether to shed it based on the
// smoothed queue delay (CoDel's signal: sojourn time, not queue
// length). Below the target nothing is shed; above it, the drop
// probability grows linearly with the overshoot up to a ceiling, so a
// mild overload sheds a trickle and a deep one sheds most of the flood
// — enough for the queue to drain back to the target. Shedding is
// additionally gated on actual queue occupancy: a stale high delay
// estimate over an empty queue must not drop traffic the worker could
// serve immediately.
type Shedder struct {
	target time.Duration

	mu  sync.Mutex
	rng uint64
}

// maxShedProbability caps the drop rate so a compliant trickle always
// retains a fighting chance even under a deep flood.
const maxShedProbability = 0.95

// NewShedder builds a shedder with a seeded PRNG; target 0 yields nil
// (disabled).
func NewShedder(target time.Duration, seed uint64) *Shedder {
	if target <= 0 {
		return nil
	}
	if seed == 0 {
		seed = 1
	}
	return &Shedder{target: target, rng: seed}
}

// Probability returns the drop probability for a smoothed delay: 0 at
// or below the target, then (delay-target)/(2*target) capped at
// maxShedProbability — the linear control law documented in DESIGN §9.
func (sh *Shedder) Probability(delay time.Duration) float64 {
	if sh == nil || delay <= sh.target {
		return 0
	}
	p := float64(delay-sh.target) / float64(2*sh.target)
	return math.Min(p, maxShedProbability)
}

// Decide rolls the seeded PRNG against Probability(delay). depth and
// capacity describe the ingest queue; with the queue less than half
// full nothing is shed regardless of the delay estimate.
func (sh *Shedder) Decide(delay time.Duration, depth, capacity int) (bool, float64) {
	if sh == nil || capacity <= 0 || depth*2 < capacity {
		return false, 0
	}
	p := sh.Probability(delay)
	if p == 0 {
		return false, 0
	}
	sh.mu.Lock()
	// xorshift64*: tiny, seedable, plenty for a drop decision.
	x := sh.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	sh.rng = x
	sh.mu.Unlock()
	r := float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53)
	return r < p, p
}

// EWMA is a lock-free exponentially weighted moving average of
// durations, written by the apply worker on every dequeue and read by
// concurrent admission decisions.
type EWMA struct {
	v atomic.Int64 // nanoseconds
}

// ewmaAlpha weights each new observation; ~0.2 smooths over the last
// handful of batches without lagging a pressure change by much.
const ewmaAlpha = 0.2

// Observe folds one queue-wait sample in and returns the new average.
func (e *EWMA) Observe(d time.Duration) time.Duration {
	for {
		old := e.v.Load()
		next := old + int64(ewmaAlpha*float64(int64(d)-old))
		if old == 0 {
			next = int64(d)
		}
		if e.v.CompareAndSwap(old, next) {
			return time.Duration(next)
		}
	}
}

// Load returns the current average.
func (e *EWMA) Load() time.Duration { return time.Duration(e.v.Load()) }

// RetryAfterHint suggests a client backoff from the smoothed queue
// delay: at least a second, at most a minute, otherwise twice the
// current delay — long enough for the queue to turn over.
func RetryAfterHint(delay time.Duration) time.Duration {
	hint := 2 * delay
	if hint < time.Second {
		hint = time.Second
	}
	if hint > time.Minute {
		hint = time.Minute
	}
	return hint
}
