package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/scriptgen"
)

// Figure3DOT renders the E→P→M→B relationship graph in Graphviz DOT, the
// form in which the paper's Figure 3 would actually be drawn.
func Figure3DOT(g *analysis.RelationGraph) string {
	var sb strings.Builder
	sb.WriteString("digraph epm {\n")
	sb.WriteString("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")

	rank := func(tag string, nodes []int) {
		sb.WriteString("  { rank=same; ")
		for _, n := range nodes {
			fmt.Fprintf(&sb, "%s%d; ", tag, n)
		}
		sb.WriteString("}\n")
	}
	rank("E", g.ENodes)
	rank("P", g.PNodes)
	rank("M", g.MNodes)
	rank("B", g.BNodes)

	writeEdges := func(adj map[int]map[int]int, fromTag, toTag string) {
		froms := make([]int, 0, len(adj))
		for f := range adj {
			froms = append(froms, f)
		}
		sort.Ints(froms)
		for _, f := range froms {
			tos := make([]int, 0, len(adj[f]))
			for t := range adj[f] {
				tos = append(tos, t)
			}
			sort.Ints(tos)
			for _, t := range tos {
				fmt.Fprintf(&sb, "  %s%d -> %s%d [label=\"%d\"];\n", fromTag, f, toTag, t, adj[f][t])
			}
		}
	}
	writeEdges(g.EP, "E", "P")
	writeEdges(g.PM, "P", "M")
	writeEdges(g.MB, "M", "B")
	sb.WriteString("}\n")
	return sb.String()
}

// FSMDOT renders a learned FSM snapshot in Graphviz DOT: states as nodes,
// matured edges labeled with their fixed-region summary.
func FSMDOT(snap scriptgen.FSMSnapshot) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph fsm_port_%d {\n", snap.Port)
	sb.WriteString("  rankdir=LR;\n  node [shape=circle, fontsize=10];\n")
	sb.WriteString("  s0 [shape=doublecircle];\n")
	for _, e := range snap.Edges {
		fmt.Fprintf(&sb, "  s%d -> s%d [label=\"%s\"];\n", e.From, e.To, patternLabel(e.Pattern))
	}
	sb.WriteString("}\n")
	return sb.String()
}

// patternLabel summarizes a message pattern for an edge label.
func patternLabel(p scriptgen.Pattern) string {
	fixed := 0
	for _, r := range p.Regions {
		fixed += len(r.Bytes)
	}
	return fmt.Sprintf("%d regions / %d fixed bytes", len(p.Regions), fixed)
}
