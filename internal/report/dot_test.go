package report

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/exploit"
	"repro/internal/scriptgen"
	"repro/internal/simrng"
)

func TestFigure3DOT(t *testing.T) {
	res := results(t)
	g, err := analysis.BuildRelationGraph(res.Dataset, res.E, res.P, res.M, res.B, res.CrossMap, 30)
	if err != nil {
		t.Fatal(err)
	}
	dot := Figure3DOT(g)
	for _, want := range []string{"digraph epm", "rank=same", "->", "label="} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Error("DOT not terminated")
	}
	// Braces must balance.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces in DOT output")
	}
}

func TestFSMDOT(t *testing.T) {
	v, err := exploit.NewVulnerability("asn1", 445, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	impl, err := exploit.NewImplementation(v, "impl-a", 2)
	if err != nil {
		t.Fatal(err)
	}
	r := simrng.New(1).Stream("dot")
	f := scriptgen.NewFSM(445, 3)
	for i := 0; i < 4; i++ {
		payload := make([]byte, 30+i)
		r.Read(payload)
		f.Learn(impl.Dialog(r, payload).ClientMessages())
	}
	dot := FSMDOT(f.Snapshot())
	for _, want := range []string{"digraph fsm_port_445", "s0 [shape=doublecircle]", "s0 ->", "fixed bytes"} {
		if !strings.Contains(dot, want) {
			t.Errorf("FSM DOT missing %q:\n%s", want, dot)
		}
	}
}
