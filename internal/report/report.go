// Package report renders the reproduction's tables and figures as text,
// one function per table/figure of the paper.
package report

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/analysis"
	"repro/internal/epm"
)

// Table1 renders the EPM feature table with discovered invariant counts
// (paper Table 1).
func Table1(e, p, m *epm.Clustering) string {
	var sb strings.Builder
	sb.WriteString("Table 1. Selected features and discovered invariants\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dim.\tFeature\t# invariants\t# distinct")
	for _, c := range []*epm.Clustering{e, p, m} {
		dim := c.Schema.Dimension
		for i, st := range c.Stats {
			label := ""
			if i == 0 {
				label = dim
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\n", label, st.Feature, st.Invariants, st.DistinctValues)
		}
	}
	_ = tw.Flush()
	return sb.String()
}

// Counts holds the §4.1 headline numbers.
type Counts struct {
	Events            int
	Samples           int
	ExecutableSamples int
	EClusters         int
	PClusters         int
	MClusters         int
	BClusters         int
}

// BigPicture renders the §4.1 headline numbers.
func BigPicture(c Counts) string {
	var sb strings.Builder
	sb.WriteString("Big picture (Section 4.1)\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "attack events\t%d\n", c.Events)
	fmt.Fprintf(tw, "malware samples collected\t%d\n", c.Samples)
	fmt.Fprintf(tw, "samples executable in sandbox\t%d\n", c.ExecutableSamples)
	fmt.Fprintf(tw, "E-clusters\t%d\n", c.EClusters)
	fmt.Fprintf(tw, "P-clusters\t%d\n", c.PClusters)
	fmt.Fprintf(tw, "M-clusters\t%d\n", c.MClusters)
	fmt.Fprintf(tw, "B-clusters\t%d\n", c.BClusters)
	_ = tw.Flush()
	return sb.String()
}

// Figure3 renders the filtered E→P→M→B relationship graph.
func Figure3(g *analysis.RelationGraph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3. EPM/B relationships (clusters with >= %d events)\n", g.MinSize)
	fmt.Fprintf(&sb, "layers: E=%d  P=%d  M=%d  B=%d\n",
		len(g.ENodes), len(g.PNodes), len(g.MNodes), len(g.BNodes))
	fmt.Fprintf(&sb, "edges:  E-P=%d  P-M=%d  M-B=%d\n",
		analysis.EdgeCount(g.EP), analysis.EdgeCount(g.PM), analysis.EdgeCount(g.MB))

	writeAdj := func(name string, adj map[int]map[int]int, fromTag, toTag string) {
		fmt.Fprintf(&sb, "%s:\n", name)
		froms := make([]int, 0, len(adj))
		for f := range adj {
			froms = append(froms, f)
		}
		sort.Ints(froms)
		for _, f := range froms {
			tos := make([]int, 0, len(adj[f]))
			for t := range adj[f] {
				tos = append(tos, t)
			}
			sort.Ints(tos)
			parts := make([]string, 0, len(tos))
			for _, t := range tos {
				parts = append(parts, fmt.Sprintf("%s%d(%d)", toTag, t, adj[f][t]))
			}
			fmt.Fprintf(&sb, "  %s%d -> %s\n", fromTag, f, strings.Join(parts, " "))
		}
	}
	writeAdj("exploit -> payload", g.EP, "E", "P")
	writeAdj("payload -> malware", g.PM, "P", "M")
	writeAdj("malware -> behavior", g.MB, "M", "B")
	return sb.String()
}

// Figure4 renders the size-1 B-cluster characteristics: AV label and E/P
// coordinate histograms.
func Figure4(rep *analysis.Size1Report) string {
	var sb strings.Builder
	sb.WriteString("Figure 4. Characteristics of the size-1 B-clusters\n")
	fmt.Fprintf(&sb, "B-clusters total=%d  size-1=%d  (1-1 with an M-cluster: %d, anomalous: %d)\n",
		rep.TotalB, rep.Size1B, rep.OneToOne, len(rep.Anomalous))
	sb.WriteString("AV names of anomalous samples:\n")
	writeHist(&sb, rep.AVNames, len(rep.Anomalous))
	sb.WriteString("propagation strategy (E/P coordinates) of anomalous samples:\n")
	writeHist(&sb, rep.EPCombos, len(rep.Anomalous))
	return sb.String()
}

func writeHist(sb *strings.Builder, hist map[string]int, total int) {
	for _, kv := range analysis.TopCounts(hist, 10) {
		bar := strings.Repeat("#", scale(kv.N, total, 40))
		fmt.Fprintf(sb, "  %-28s %5d %s\n", kv.K, kv.N, bar)
	}
}

func scale(n, total, width int) int {
	if total <= 0 {
		return 0
	}
	w := n * width / total
	if w == 0 && n > 0 {
		w = 1
	}
	return w
}

// Figure5 renders the propagation context of one B-cluster: per-M-cluster
// attacker distribution, activity weeks, and timeline.
func Figure5(rep *analysis.ContextReport, maxM int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5. Propagation context of B-cluster B%d (%d samples)\n", rep.BCluster, rep.BSize)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "M-cluster\tsamples\tevents\tattackers\t/24s\tactive-weeks\tspan\tbursty")
	shown := rep.PerM
	if maxM > 0 && len(shown) > maxM {
		shown = shown[:maxM]
	}
	for _, mc := range shown {
		fmt.Fprintf(tw, "M%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			mc.MCluster, mc.Samples, mc.Events, mc.Attackers, mc.Slash24s,
			mc.ActiveWeeks, mc.SpanWeeks, mc.Bursty())
	}
	_ = tw.Flush()
	sb.WriteString("attacker distribution over the IP space (16 buckets, low to high):\n")
	for _, mc := range shown {
		fmt.Fprintf(&sb, "  M%-4d %s\n", mc.MCluster, histogramStrip(mc.IPHistogram))
	}
	sb.WriteString("timelines (one row per M-cluster, one column per week):\n")
	for _, mc := range shown {
		fmt.Fprintf(&sb, "  M%-4d %s\n", mc.MCluster, analysis.TimelineString(mc.Timeline))
	}
	return sb.String()
}

// histogramStrip renders per-bucket counts as intensity glyphs, the
// compact form of Figure 5's top panels.
func histogramStrip(hist []int) string {
	max := 0
	for _, n := range hist {
		if n > max {
			max = n
		}
	}
	if max == 0 {
		return strings.Repeat(".", len(hist))
	}
	glyphs := []byte(" .:-=+*#%@")
	var sb strings.Builder
	sb.Grow(len(hist))
	for _, n := range hist {
		idx := n * (len(glyphs) - 1) / max
		if n > 0 && idx == 0 {
			idx = 1
		}
		sb.WriteByte(glyphs[idx])
	}
	return sb.String()
}

// Table2 renders the IRC C&C correlation.
func Table2(rows []analysis.IRCRow) string {
	var sb strings.Builder
	sb.WriteString("Table 2. IRC servers associated to M-clusters\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Server address\tRoom name\tM-clusters")
	for _, r := range rows {
		ms := make([]string, 0, len(r.MClusters))
		for _, m := range r.MClusters {
			ms = append(ms, fmt.Sprintf("%d", m))
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", r.Server, r.Room, strings.Join(ms, ", "))
	}
	_ = tw.Flush()

	if nets := analysis.SharedSubnets(rows); len(nets) > 0 {
		sb.WriteString("shared /24 subnets:\n")
		for _, net := range sortedKeys(nets) {
			fmt.Fprintf(&sb, "  %s: %s\n", net, strings.Join(nets[net], ", "))
		}
	}
	if rooms := analysis.RecurringRooms(rows); len(rooms) > 0 {
		sb.WriteString("recurring room names:\n")
		for _, room := range sortedKeys(rooms) {
			fmt.Fprintf(&sb, "  %s: %s\n", room, strings.Join(rooms[room], ", "))
		}
	}
	return sb.String()
}

func sortedKeys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Temporal renders the cluster-evolution report: per-period activity and
// churn plus the longest-lived clusters.
func Temporal(rep *analysis.TemporalReport, maxRows int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cluster evolution (%s dimension, %d-week periods)\n", rep.Dimension, rep.PeriodWeeks)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "period\tevents\tactive clusters\tnew clusters")
	for _, p := range rep.Periods {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\n", p.Period, p.Events, p.ActiveClusters, p.NewClusters)
	}
	_ = tw.Flush()
	fmt.Fprintf(&sb, "average churn rate: %.3f\n", rep.ChurnRate())
	long := rep.LongLived(6)
	if maxRows > 0 && len(long) > maxRows {
		long = long[:maxRows]
	}
	if len(long) > 0 {
		sb.WriteString("longest-lived clusters (>= 6 active periods):\n")
		for _, cl := range long {
			lt := rep.Lifetimes[cl]
			fmt.Fprintf(&sb, "  #%d: periods %d..%d (%d active)\n", cl, lt.FirstPeriod, lt.LastPeriod, lt.ActivePeriods)
		}
	}
	return sb.String()
}

// MClusterPattern renders an M-cluster's invariant pattern in the style of
// the paper's §4.2 example listing.
func MClusterPattern(m *epm.Clustering, idx int) string {
	if idx < 0 || idx >= len(m.Clusters) {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "M-cluster %d pattern {\n", idx)
	for i, feat := range m.Schema.Features {
		fmt.Fprintf(&sb, "  %s = %s\n", feat, m.Clusters[idx].Pattern.Values[i])
	}
	sb.WriteString("}\n")
	return sb.String()
}
