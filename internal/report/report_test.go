package report

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
)

var cached *core.Results

func results(t *testing.T) *core.Results {
	t.Helper()
	if cached == nil {
		res, err := core.Run(core.SmallScenario())
		if err != nil {
			t.Fatal(err)
		}
		cached = res
	}
	return cached
}

func TestTable1Rendering(t *testing.T) {
	res := results(t)
	out := Table1(res.E, res.P, res.M)
	for _, want := range []string{
		"Table 1",
		"FSM path identifier",
		"Destination port",
		"Download protocol",
		"Interaction type",
		"File MD5",
		"(PE) Linker version",
		"(PE) Referenced Kernel32.dll symbols",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 18 {
		t.Errorf("Table1 too short:\n%s", out)
	}
}

func TestBigPictureRendering(t *testing.T) {
	res := results(t)
	events, samples, executable, e, p, m, b := res.Counts()
	out := BigPicture(Counts{
		Events: events, Samples: samples, ExecutableSamples: executable,
		EClusters: e, PClusters: p, MClusters: m, BClusters: b,
	})
	for _, want := range []string{"E-clusters", "P-clusters", "M-clusters", "B-clusters", "executable"} {
		if !strings.Contains(out, want) {
			t.Errorf("BigPicture missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3Rendering(t *testing.T) {
	res := results(t)
	g, err := analysis.BuildRelationGraph(res.Dataset, res.E, res.P, res.M, res.B, res.CrossMap, 30)
	if err != nil {
		t.Fatal(err)
	}
	out := Figure3(g)
	for _, want := range []string{"Figure 3", "layers:", "edges:", "exploit -> payload", "malware -> behavior"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure3 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4Rendering(t *testing.T) {
	res := results(t)
	rep, err := analysis.FindSize1Anomalies(res.Dataset, res.E, res.P, res.B, res.CrossMap)
	if err != nil {
		t.Fatal(err)
	}
	out := Figure4(rep)
	for _, want := range []string{"Figure 4", "size-1", "AV names", "E/P coordinates"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure4 missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "W32.Rahack") {
		t.Errorf("Figure4 must show the dominant Rahack labels:\n%s", out)
	}
}

func TestFigure5Rendering(t *testing.T) {
	res := results(t)
	multi := res.CrossMap.MultiMBClusters(res.B)
	if len(multi) == 0 {
		t.Skip("no multi-M B-cluster")
	}
	rep, err := analysis.PropagationContext(res.Dataset, res.M, res.B, res.CrossMap, multi[0])
	if err != nil {
		t.Fatal(err)
	}
	out := Figure5(rep, 8)
	for _, want := range []string{"Figure 5", "M-cluster", "timelines"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure5 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	rows := []analysis.IRCRow{
		{Server: "67.43.232.35", Port: 6667, Room: "#kok6", MClusters: []int{23, 277}},
		{Server: "67.43.232.36", Port: 6667, Room: "#kok6", MClusters: []int{195}},
		{Server: "72.10.172.211", Port: 6667, Room: "#las6", MClusters: []int{266}},
	}
	out := Table2(rows)
	for _, want := range []string{"Table 2", "67.43.232.35", "#kok6", "23, 277", "shared /24 subnets", "recurring room names"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestMClusterPattern(t *testing.T) {
	res := results(t)
	out := MClusterPattern(res.M, 0)
	if !strings.Contains(out, "M-cluster 0 pattern") || !strings.Contains(out, "File MD5") {
		t.Errorf("MClusterPattern output:\n%s", out)
	}
	if MClusterPattern(res.M, -1) != "" || MClusterPattern(res.M, 1<<30) != "" {
		t.Error("out-of-range cluster must render empty")
	}
}

func TestTemporalRendering(t *testing.T) {
	res := results(t)
	rep, err := analysis.Temporal(res.Dataset, res.M, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := Temporal(rep, 5)
	for _, want := range []string{"Cluster evolution", "period", "new clusters", "churn rate", "longest-lived"} {
		if !strings.Contains(out, want) {
			t.Errorf("Temporal missing %q:\n%s", want, out)
		}
	}
	// maxRows bounds the long-lived listing.
	lines := strings.Count(out, "periods ")
	if lines > 5 {
		t.Errorf("long-lived listing shows %d rows, want <= 5", lines)
	}
}

func TestHistogramStrip(t *testing.T) {
	if got := histogramStrip([]int{0, 0, 0}); got != "..." {
		t.Errorf("empty histogram = %q", got)
	}
	got := histogramStrip([]int{0, 1, 10})
	if len(got) != 3 {
		t.Fatalf("strip length = %d", len(got))
	}
	if got[0] != ' ' && got[0] != '.' {
		t.Errorf("zero bucket glyph = %q", got[0])
	}
	if got[2] != '@' {
		t.Errorf("max bucket glyph = %q, want @", got[2])
	}
	// A tiny non-zero count must still be visible.
	if got[1] == ' ' {
		t.Error("non-zero bucket rendered as blank")
	}
}
