package loadgen_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/httpapi"
	"repro/internal/loadgen"
	"repro/internal/shard"
	"repro/internal/stream"
)

// shardFloodCfg pins the per-shard service shape for the flood: epochs
// only on flush (apply cost stays linear under load), a shallow queue
// so the flood actually backs up, and two apply workers per shard.
func shardFloodCfg() stream.Config {
	cfg := stream.DefaultConfig()
	cfg.EpochSize = 0
	cfg.QueueDepth = 4
	cfg.Parallelism = 2
	return cfg
}

// shardFloodPlans is the fixed workload both deployments absorb: four
// clients posting back-to-back, distinct sample populations per client.
func shardFloodPlans() []loadgen.ClientPlan {
	var plans []loadgen.ClientPlan
	for c := 0; c < 4; c++ {
		name := fmt.Sprintf("fc%d", c)
		plans = append(plans, loadgen.ClientPlan{
			Name:    name,
			Batches: batches(benchdata.ClientEvents(name, 300), 20),
		})
	}
	return plans
}

// runShardFlood floods a fresh deployment at the given shard count with
// the fixed workload over HTTP, drains it, and returns the coordinator
// (for equivalence checks) and the wall time from first post through
// the completed drain.
func runShardFlood(t *testing.T, shards int, enr stream.Enricher) (*shard.Coordinator, time.Duration) {
	t.Helper()
	c, err := shard.New(shard.Config{Shards: shards, Stream: shardFloodCfg()}, enr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	srv := httptest.NewServer(httpapi.New(func() httpapi.Backend { return c }, httpapi.Options{}))
	t.Cleanup(srv.Close)

	plans := shardFloodPlans()
	total := 0
	for _, p := range plans {
		for _, b := range p.Batches {
			total += len(b)
		}
	}
	start := time.Now()
	rep, err := loadgen.Run(context.Background(), loadgen.Config{BaseURL: srv.URL, Clients: plans})
	if err != nil {
		t.Fatal(err)
	}
	flushHTTP(t, srv.URL)
	elapsed := time.Since(start)

	// No-collapse: with blocking admission every batch lands; nothing is
	// lost to transport errors or unexplained statuses.
	if rep.Accepted() != rep.Submitted() {
		t.Fatalf("shards=%d: accepted %d of %d batches (rejected: %v)",
			shards, rep.Accepted(), rep.Submitted(), rep.RejectedByReason())
	}
	for _, cl := range rep.Clients {
		if cl.Errors != 0 {
			t.Fatalf("shards=%d: client %s saw %d transport errors", shards, cl.Name, cl.Errors)
		}
	}
	st := shardHTTPStats(t, srv.URL)
	if st.Shards != shards {
		t.Fatalf("stats shards = %d, want %d", st.Shards, shards)
	}
	if st.Aggregate.Events != total {
		t.Fatalf("shards=%d: aggregate events %d, want %d", shards, st.Aggregate.Events, total)
	}
	if st.MergeErrors != 0 {
		t.Fatalf("shards=%d: %d merge errors (%s)", shards, st.MergeErrors, st.LastMergeError)
	}
	return c, elapsed
}

// shardHTTPStats decodes the sharded stats shape from /v1/stats.
func shardHTTPStats(t *testing.T, base string) shard.Stats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st shard.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats: decoding: %v", err)
	}
	return st
}

// assertMergedConverged compares the coordinator's post-drain merged
// views against the batch pipeline over the union of the events its
// shards admitted (concatenated in shard order — the merge is proven
// arrival-order independent, and the batch pipeline sees that order).
func assertMergedConverged(t *testing.T, c *shard.Coordinator, cfg stream.Config, enr core.Enricher) {
	t.Helper()
	var events []dataset.Event
	for i := 0; i < c.Shards(); i++ {
		events = append(events, c.Shard(i).Dataset().Events()...)
	}
	batch, err := core.RunEvents(events, enr, cfg.Thresholds, cfg.BCluster, 0)
	if err != nil {
		t.Fatalf("batch reference: %v", err)
	}
	want := map[string]interface{}{
		"epsilon": batch.E.Clusters, "pi": batch.P.Clusters, "mu": batch.M.Clusters,
	}
	for dim, wc := range want {
		got, err := c.EPMClustering(dim)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Clusters, wc) {
			t.Fatalf("merged %s clustering diverged from the batch reference", dim)
		}
	}
	bres, err := c.BResult()
	if err != nil {
		t.Fatal(err)
	}
	if got, wantB := bPartition(bres), bPartition(batch.B); !reflect.DeepEqual(got, wantB) {
		t.Fatalf("merged B partition diverged: got %d clusters, want %d", len(got), len(wantB))
	}
}

// TestShardFloodSmoke is the sharded-throughput harness behind
// `make smoke-shard`: the same multi-client HTTP flood drains through a
// 1-shard and a 4-shard deployment. Both must absorb every batch
// without transport errors, the 4-shard merged views must converge with
// the batch pipeline over the admitted events, and — on a box with the
// cores to show it — the 4-shard drain must run at least twice as fast.
func TestShardFloodSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second flood harness")
	}
	enr := synEnricher{delay: 2 * time.Millisecond}

	_, base := runShardFlood(t, 1, enr)
	c4, sharded := runShardFlood(t, 4, enr)
	assertMergedConverged(t, c4, shardFloodCfg(), enr)

	ratio := float64(base) / float64(sharded)
	t.Logf("flood drain: 1 shard %v, 4 shards %v (%.2fx aggregate speedup, %d CPUs)",
		base.Round(time.Millisecond), sharded.Round(time.Millisecond), ratio, runtime.NumCPU())
	// The CI bound from the issue: >=2x at 4 shards. Enforced only where
	// the hardware can express it; a 1-core box serializes the apply
	// workers and measures the scheduler instead of the sharding.
	if runtime.NumCPU() >= 4 && ratio < 2 {
		t.Fatalf("4-shard flood drained only %.2fx faster than 1 shard (want >=2x)", ratio)
	}
}
