package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// ReadPlan drives a fixed-duration read flood fanned out over several
// query targets (a primary plus its replicas): every target gets
// ClientsPerTarget goroutines cycling through Paths as fast as the
// target answers. The aggregate throughput is the replication payoff
// being measured — replicas multiply read capacity because each
// follower rebuilds the full state and answers from local memory.
type ReadPlan struct {
	// Targets are the base URLs to query, round-robin over all of them.
	Targets []string
	// ClientsPerTarget is the per-target goroutine count; 0 means 2.
	ClientsPerTarget int
	// Duration bounds the flood; 0 means one second.
	Duration time.Duration
	// Paths are the GET endpoints to cycle through; empty selects the
	// four cluster views.
	Paths []string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
}

// ReadReport aggregates a read flood.
type ReadReport struct {
	// Requests counts completed 200s; Errors everything else.
	Requests int
	Errors   int
	// Bytes sums response body sizes (a sanity check that the floods
	// compared actually shipped comparable views).
	Bytes int64
	// Elapsed is the wall time of the flood.
	Elapsed time.Duration
}

// QPS is the aggregate successful-read throughput.
func (r ReadReport) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// RunReads executes the plan and aggregates across all goroutines.
func RunReads(plan ReadPlan) ReadReport {
	clients := plan.ClientsPerTarget
	if clients <= 0 {
		clients = 2
	}
	duration := plan.Duration
	if duration <= 0 {
		duration = time.Second
	}
	paths := plan.Paths
	if len(paths) == 0 {
		paths = []string{"/v1/clusters/e", "/v1/clusters/p", "/v1/clusters/m", "/v1/clusters/b"}
	}
	httpClient := plan.HTTPClient
	if httpClient == nil {
		httpClient = http.DefaultClient
	}

	var mu sync.Mutex
	var report ReadReport
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(duration)
	for _, target := range plan.Targets {
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(base string, seed int) {
				defer wg.Done()
				requests, errors := 0, 0
				var bytes int64
				for i := seed; time.Now().Before(deadline); i++ {
					resp, err := httpClient.Get(base + paths[i%len(paths)])
					if err != nil {
						errors++
						continue
					}
					n, _ := io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errors++
						continue
					}
					requests++
					bytes += n
				}
				mu.Lock()
				report.Requests += requests
				report.Errors += errors
				report.Bytes += bytes
				mu.Unlock()
			}(target, c)
		}
	}
	wg.Wait()
	report.Elapsed = time.Since(start)
	return report
}

// String renders the report for logs.
func (r ReadReport) String() string {
	return fmt.Sprintf("%d reads (%d errors, %.1f MiB) in %v = %.0f reads/s",
		r.Requests, r.Errors, float64(r.Bytes)/(1<<20), r.Elapsed.Round(time.Millisecond), r.QPS())
}
