package loadgen_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/loadgen"
	"repro/internal/replica"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/wal"
)

// replPrimary is a durable primary serving both the query API and the
// log-shipping endpoints, the way `landscaped -repl` wires them.
type replPrimary struct {
	backend httpapi.Backend
	logs    []*wal.Log
	srv     *httptest.Server
}

func newReplPrimary(t *testing.T, shards int) *replPrimary {
	t.Helper()
	cfg := shardFloodCfg()
	cfg.Durability = stream.Durability{Dir: t.TempDir(), NoSync: true, SegmentBytes: 1 << 16}
	p := &replPrimary{}
	var sources []replica.Source
	if shards == 1 {
		svc, err := stream.New(cfg, synEnricher{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)
		dir, log := svc.ReplicationSource()
		sources = []replica.Source{{Dir: dir, Log: log}}
		p.backend = svc
	} else {
		c, err := shard.New(shard.Config{Shards: shards, Stream: cfg}, synEnricher{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		for i := 0; i < c.Shards(); i++ {
			dir, log := c.Shard(i).ReplicationSource()
			sources = append(sources, replica.Source{Dir: dir, Log: log})
		}
		p.backend = c
	}
	for _, s := range sources {
		p.logs = append(p.logs, s.Log)
	}
	pub, err := replica.NewPublisher(sources)
	if err != nil {
		t.Fatal(err)
	}
	p.srv = httptest.NewServer(httpapi.New(
		func() httpapi.Backend { return p.backend },
		httpapi.Options{Repl: pub.Handler()}))
	t.Cleanup(p.srv.Close)
	return p
}

// startReplica bootstraps a follower off the primary, starts its tail
// loop, and serves it over its own httptest server.
func startReplica(t *testing.T, p *replPrimary, poll time.Duration) (*replica.Follower, *httptest.Server) {
	t.Helper()
	f, err := replica.NewFollower(replica.FollowerConfig{
		Primary:  p.srv.URL,
		Stream:   shardFloodCfg(),
		Enricher: synEnricher{},
		Poll:     poll,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	f.Start()
	srv := httptest.NewServer(httpapi.New(
		func() httpapi.Backend { return f },
		httpapi.Options{Readiness: f.Ready}))
	t.Cleanup(srv.Close)
	return f, srv
}

// waitCaughtUp polls the follower until every shard reaches the
// primary's current WAL head.
func waitCaughtUp(t *testing.T, f *replica.Follower, p *replPrimary) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		lag := f.Lag()
		ok := lag.CaughtUp && len(lag.AppliedSeq) == len(p.logs)
		if ok {
			for i, log := range p.logs {
				if lag.AppliedSeq[i] != log.LastSeq() {
					ok = false
				}
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: %+v", lag)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getBody(t *testing.T, base, path string) string {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", path, resp.Status, b)
	}
	return string(b)
}

// TestReplicaFanoutSmoke is the replication harness behind
// `make smoke-replica`, at one shard and at four: flood a durable
// primary over HTTP (with a first follower bootstrapping mid-flood and
// being abandoned, standing in for a killed replica), drain, then
// bring up fresh followers and require (1) byte-identical cluster
// views on every follower, (2) typed 403s for writes, and (3) the
// aggregate read throughput of 1 primary + 2 replicas to at least
// double the primary's own (enforced only with enough cores to mean
// anything).
func TestReplicaFanoutSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second replication harness")
	}
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			p := newReplPrimary(t, shards)

			// A follower that starts mid-flood and dies mid-catch-up: its
			// replacement must converge regardless of where it stopped.
			abandoned := make(chan struct{})
			go func() {
				defer close(abandoned)
				f, err := replica.NewFollower(replica.FollowerConfig{
					Primary:  p.srv.URL,
					Stream:   shardFloodCfg(),
					Enricher: synEnricher{},
					Poll:     20 * time.Millisecond,
				})
				if err != nil {
					return
				}
				// Best effort: the flood may outrun it; kill it either way.
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				f.Bootstrap(ctx)
				f.Close()
			}()

			report, err := loadgen.Run(context.Background(), loadgen.Config{BaseURL: p.srv.URL, Clients: shardFloodPlans()})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range report.Clients {
				if c.Errors > 0 || c.RejectedTotal() > 0 {
					t.Fatalf("client %s: %d errors, %d rejections during the flood",
						c.Name, c.Errors, c.RejectedTotal())
				}
			}
			flushHTTP(t, p.srv.URL)
			<-abandoned

			rep1, srv1 := startReplica(t, p, 20*time.Millisecond)
			rep2, srv2 := startReplica(t, p, 20*time.Millisecond)
			waitCaughtUp(t, rep1, p)
			waitCaughtUp(t, rep2, p)

			for _, path := range []string{"/v1/clusters/e", "/v1/clusters/p", "/v1/clusters/m", "/v1/clusters/b"} {
				want := getBody(t, p.srv.URL, path)
				for i, srv := range []*httptest.Server{srv1, srv2} {
					if got := getBody(t, srv.URL, path); got != want {
						t.Fatalf("replica %d: %s diverges from the primary:\nreplica %s\nprimary %s",
							i+1, path, got, want)
					}
				}
			}

			resp, err := http.Post(srv1.URL+"/v1/ingest", "application/json", strings.NewReader("[]"))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusForbidden {
				t.Fatalf("write on a replica: %s, want 403", resp.Status)
			}

			baseline := loadgen.RunReads(loadgen.ReadPlan{
				Targets:          []string{p.srv.URL},
				ClientsPerTarget: 2,
				Duration:         700 * time.Millisecond,
			})
			fanned := loadgen.RunReads(loadgen.ReadPlan{
				Targets:          []string{p.srv.URL, srv1.URL, srv2.URL},
				ClientsPerTarget: 2,
				Duration:         700 * time.Millisecond,
			})
			t.Logf("reads: primary alone %v; primary+2 replicas %v", baseline, fanned)
			if baseline.Errors > 0 || fanned.Errors > 0 {
				t.Fatalf("read floods hit errors: baseline %d, fanned %d", baseline.Errors, fanned.Errors)
			}
			ratio := fanned.QPS() / baseline.QPS()
			if runtime.NumCPU() >= 4 && ratio < 2 {
				t.Errorf("aggregate read throughput with 2 replicas only %.2fx the primary's (want >= 2x)", ratio)
			} else if ratio < 2 {
				t.Logf("read scaling %.2fx < 2x tolerated on %d CPUs (serialized scheduling)", ratio, runtime.NumCPU())
			}
		})
	}
}
