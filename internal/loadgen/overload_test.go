package loadgen_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/bcluster"
	"repro/internal/behavior"
	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/httpapi"
	"repro/internal/loadgen"
	"repro/internal/stream"
)

// synEnricher is the overload harness's deterministic sandbox stand-in:
// the behavioral profile is a pure function of the sample MD5 (the
// trailing index of benchdata.ClientEvents names, fam = index mod 25),
// and every execution burns a fixed delay, which sets the service's
// known apply capacity. The same enricher drives the streaming run and
// its batch reference, so the two must converge.
type synEnricher struct{ delay time.Duration }

func famOf(md5 string) int {
	if i := strings.LastIndex(md5, "smp"); i >= 0 {
		if n, err := strconv.Atoi(md5[i+3:]); err == nil {
			return n % 25
		}
	}
	return 0
}

func (e synEnricher) LabelSample(s *dataset.Sample) error {
	s.AVLabel = fmt.Sprintf("Syn.fam%d", famOf(s.MD5))
	return nil
}

func (e synEnricher) ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error) {
	if e.delay > 0 {
		time.Sleep(e.delay)
	}
	p := behavior.NewProfile()
	fam := famOf(s.MD5)
	for k := 0; k < 10; k++ {
		p.Add(fmt.Sprintf("fam%d-b%d", fam, k))
	}
	return p, false, nil
}

func newOverloadServer(t *testing.T, cfg stream.Config, enr stream.Enricher) (*stream.Service, *httptest.Server) {
	t.Helper()
	svc, err := stream.New(cfg, enr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(httpapi.New(func() httpapi.Backend { return svc }, httpapi.Options{}))
	t.Cleanup(srv.Close)
	return svc, srv
}

// flushHTTP posts /v1/flush, honoring admission rejections (a pressured
// service answers 429/503 with Retry-After) by retrying until the drain
// succeeds.
func flushHTTP(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Post(base+"/v1/flush", "application/json", nil)
		if err != nil {
			t.Fatalf("flush: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return
		}
		if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("flush: unexpected status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("flush: service never drained")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func httpStats(t *testing.T, base string) stream.Stats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st stream.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats: decoding: %v", err)
	}
	return st
}

// bPartition canonicalizes a behavioral clustering to its membership
// partition: sorted member lists, sorted by first member. Stable IDs and
// epoch counters legitimately differ between a pressured streaming run
// and its batch reference; the partition must not.
func bPartition(res *bcluster.Result) [][]string {
	out := make([][]string, 0, len(res.Clusters))
	for _, c := range res.Clusters {
		members := append([]string(nil), c.Members...)
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// assertConverged compares the service's post-flush state against the
// batch pipeline (core.RunEvents) over exactly the events the service
// admitted.
func assertConverged(t *testing.T, svc *stream.Service, cfg stream.Config, enr core.Enricher) {
	t.Helper()
	events := svc.Dataset().Events()
	batch, err := core.RunEvents(events, enr, cfg.Thresholds, cfg.BCluster, 0)
	if err != nil {
		t.Fatalf("batch reference: %v", err)
	}
	want := map[string]interface{}{
		"epsilon": batch.E.Clusters, "pi": batch.P.Clusters, "mu": batch.M.Clusters,
	}
	for dim, wc := range want {
		got, err := svc.EPMClustering(dim)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Clusters, wc) {
			t.Fatalf("%s clustering diverged from the batch reference", dim)
		}
	}
	if got, wantB := bPartition(svc.BResult()), bPartition(batch.B); !reflect.DeepEqual(got, wantB) {
		t.Fatalf("B partition diverged: got %d clusters, want %d", len(got), len(wantB))
	}
	st := svc.Stats()
	if st.Events != len(events) {
		t.Fatalf("stats events %d != dataset events %d", st.Events, len(events))
	}
	if st.Executed != batch.Executed {
		t.Fatalf("executed %d != batch %d", st.Executed, batch.Executed)
	}
}

func batches(events []dataset.Event, size int) [][]dataset.Event {
	var out [][]dataset.Event
	for len(events) > 0 {
		n := size
		if n > len(events) {
			n = len(events)
		}
		out = append(out, events[:n])
		events = events[n:]
	}
	return out
}

// TestOverloadSmoke is the deterministic overload harness behind
// `make smoke-overload`: a slow enricher pins the service's apply
// capacity, a seeded multi-client load generator drives it far past
// that capacity over HTTP, and the service must (1) keep accepting work
// instead of collapsing, (2) answer every rejection quickly with a
// structured reason, (3) keep its admission ledger consistent and
// monotonic, (4) favor in-budget clients when the rate limiter is on,
// and (5) converge byte-identically with the batch pipeline over the
// events it admitted once the pressure ends.
func TestOverloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second overload harness")
	}

	t.Run("sustained-overload", func(t *testing.T) {
		enr := synEnricher{delay: 5 * time.Millisecond}
		cfg := stream.DefaultConfig()
		cfg.EpochSize = 0 // epochs on flush; apply cost stays linear under flood
		cfg.QueueDepth = 4
		cfg.Parallelism = 2
		cfg.Admission = admission.Config{
			Deadline:   50 * time.Millisecond,
			ShedTarget: 5 * time.Millisecond,
			Seed:       42,
		}
		svc, srv := newOverloadServer(t, cfg, enr)

		// Monotonicity watcher: the admission ledger seen over HTTP must
		// never run backwards while the flood is on.
		stop := make(chan struct{})
		watcher := make(chan error, 1)
		go func() {
			defer close(watcher)
			var last stream.AdmissionStats
			for {
				select {
				case <-stop:
					return
				case <-time.After(20 * time.Millisecond):
				}
				st := httpStats(t, srv.URL)
				a := st.Admission
				if a.AdmittedBatches < last.AdmittedBatches || a.AdmittedEvents < last.AdmittedEvents {
					watcher <- fmt.Errorf("admitted counters ran backwards: %+v -> %+v", last, a)
					return
				}
				for reason, n := range last.RejectedBatches {
					if a.RejectedBatches[reason] < n {
						watcher <- fmt.Errorf("rejected[%s] ran backwards: %d -> %d", reason, n, a.RejectedBatches[reason])
						return
					}
				}
				last = a
			}
		}()

		// Six clients posting back-to-back: the service applies ~10
		// batches/sec (20 fresh samples x 5ms at parallelism 2), while
		// each client re-posts within the 50ms admission deadline —
		// a sustained >=10x overload.
		const perClient = 30
		var plans []loadgen.ClientPlan
		for c := 0; c < 6; c++ {
			name := fmt.Sprintf("c%d", c)
			plans = append(plans, loadgen.ClientPlan{
				Name:    name,
				Batches: batches(benchdata.ClientEvents(name, perClient*20), 20),
			})
		}
		rep, err := loadgen.Run(context.Background(), loadgen.Config{BaseURL: srv.URL, Clients: plans})
		if err != nil {
			t.Fatal(err)
		}
		close(stop)
		if err := <-watcher; err != nil {
			t.Fatal(err)
		}

		// Accounting: every submitted batch was either accepted or
		// rejected with a reason — nothing lost, no transport errors.
		rejected := 0
		for reason, n := range rep.RejectedByReason() {
			switch reason {
			case string(admission.ReasonDeadline), string(admission.ReasonQueueFull), string(admission.ReasonShed), string(admission.ReasonRateLimit):
				rejected += n
			default:
				t.Fatalf("unknown rejection reason %q (%d)", reason, n)
			}
		}
		if got := rep.Accepted() + rejected; got != rep.Submitted() {
			t.Fatalf("accepted %d + rejected %d != submitted %d", rep.Accepted(), rejected, rep.Submitted())
		}
		for _, c := range rep.Clients {
			if c.Errors != 0 {
				t.Fatalf("client %s: %d transport errors", c.Name, c.Errors)
			}
		}

		// No-collapse band: the flood was real (most batches bounced)
		// yet the service kept absorbing work at its capacity.
		if rejected == 0 {
			t.Fatal("overload produced no rejections; load did not exceed capacity")
		}
		if rep.Accepted() < 8 {
			t.Fatalf("throughput collapapsed: only %d batches accepted", rep.Accepted())
		}
		// Bounded admission latency: rejections answer within the
		// deadline, not after queueing behind the backlog.
		if p99 := rep.LatencyQuantile(0.99); p99 > 2*time.Second {
			t.Fatalf("p99 admission latency %v; overload must fail fast", p99)
		}

		// Post-pressure: drain, then the admitted events must replay to
		// exactly the batch pipeline's state.
		flushHTTP(t, srv.URL)
		st := httpStats(t, srv.URL)
		if st.Admission.AdmittedBatches != rep.Accepted() {
			t.Fatalf("service admitted %d batches, generator saw %d accepted", st.Admission.AdmittedBatches, rep.Accepted())
		}
		assertConverged(t, svc, cfg, enr)
	})

	t.Run("per-client-fairness", func(t *testing.T) {
		cfg := stream.DefaultConfig()
		cfg.EpochSize = 0
		cfg.QueueDepth = 16
		cfg.Admission = admission.Config{
			RatePerSec: 20,
			Burst:      4,
			Deadline:   100 * time.Millisecond,
			Seed:       7,
		}
		svc, srv := newOverloadServer(t, cfg, synEnricher{})
		_ = svc

		flood := loadgen.ClientPlan{
			Name:    "flood",
			Batches: batches(benchdata.ClientEvents("flood", 150), 1),
		}
		calm := loadgen.ClientPlan{
			Name:     "calm",
			Batches:  batches(benchdata.ClientEvents("calm", 12), 1),
			Interval: 100 * time.Millisecond, // 10 posts/sec, inside the 20/sec budget
		}
		rep, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL: srv.URL, Clients: []loadgen.ClientPlan{flood, calm},
		})
		if err != nil {
			t.Fatal(err)
		}

		fl, ca := rep.Client("flood"), rep.Client("calm")
		if ca.Accepted != ca.Submitted {
			t.Fatalf("calm client lost %d of %d batches to the flood: %+v",
				ca.Submitted-ca.Accepted, ca.Submitted, ca.Rejected)
		}
		if fl.Rejected[string(admission.ReasonRateLimit)] < fl.Submitted/2 {
			t.Fatalf("flood client: only %d/%d rate-limited", fl.Rejected[string(admission.ReasonRateLimit)], fl.Submitted)
		}
		// Rate-limit rejections carry a retry hint.
		for _, o := range fl.Outcomes {
			if o.Reason == string(admission.ReasonRateLimit) && o.RetryAfterMS <= 0 {
				t.Fatal("rate-limit rejection without a retry_after_ms hint")
			}
		}
	})

	t.Run("degraded-mode-over-http", func(t *testing.T) {
		enr := synEnricher{}
		cfg := stream.DefaultConfig()
		cfg.EpochSize = 4
		cfg.Admission = admission.Config{DegradeTarget: time.Nanosecond}
		svc, srv := newOverloadServer(t, cfg, enr)

		for _, b := range batches(benchdata.ClientEvents("deg", 40), 8) {
			body, _ := json.Marshal(b)
			resp, err := http.Post(srv.URL+"/v1/ingest", "application/json", strings.NewReader(string(body)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ingest: status %d", resp.StatusCode)
			}
		}
		// The pinned degrade target keeps the service degraded from the
		// first observed batch: epochs defer, and the cluster views say so.
		waitFor := time.Now().Add(10 * time.Second)
		for {
			st := httpStats(t, srv.URL)
			if st.Admission.Degraded && st.Admission.EpochsDeferred > 0 {
				break
			}
			if time.Now().After(waitFor) {
				t.Fatalf("service never entered degraded mode: %+v", st.Admission)
			}
			time.Sleep(10 * time.Millisecond)
		}
		resp, err := http.Get(srv.URL + "/v1/clusters/epsilon")
		if err != nil {
			t.Fatal(err)
		}
		var view stream.EPMView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !view.Degraded {
			t.Fatal("cluster view of a degraded service must be marked degraded")
		}
		// Flush forces the deferred epochs; the degraded run must land on
		// the batch pipeline's state anyway.
		flushHTTP(t, srv.URL)
		assertConverged(t, svc, cfg, enr)
	})
}
