// Package loadgen is the deterministic load generator of the overload
// harness: it drives a landscape service over HTTP with per-client
// event streams, records every admission outcome, and reports per-client
// acceptance, rejection-by-reason, and latency quantiles. The event
// content comes from the caller (typically benchdata.ClientEvents), so
// a run is deterministic up to service-side timing.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
)

// ClientIDHeader names the header carrying the client key; it mirrors
// httpapi.ClientIDHeader without importing the server package.
const ClientIDHeader = "X-Client-ID"

// ClientPlan is one synthetic client's workload: its admission identity,
// the batches it posts in order, and the pacing between posts.
type ClientPlan struct {
	// Name is sent as the X-Client-ID header and keys the report.
	Name string
	// Batches are posted sequentially to /v1/ingest.
	Batches [][]dataset.Event
	// Interval paces the posts; 0 posts back-to-back, which is how the
	// overload phases exceed service capacity.
	Interval time.Duration
}

// Config parameterizes a load run.
type Config struct {
	// BaseURL is the service root, e.g. the httptest server URL.
	BaseURL string
	// Clients run concurrently, one goroutine each.
	Clients []ClientPlan
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
}

// Outcome is one posted batch's admission result.
type Outcome struct {
	// Status is the HTTP status code; 0 records a transport error.
	Status int
	// Reason is the structured rejection reason on 429/503 answers
	// ("rate-limit", "deadline", "queue-full", "shed"), empty otherwise.
	Reason string
	// RetryAfterMS echoes the retry_after_ms hint on rejections.
	RetryAfterMS int64
	// Latency is the full request round trip.
	Latency time.Duration
}

// ClientReport aggregates one client's outcomes.
type ClientReport struct {
	Name      string
	Submitted int
	Accepted  int
	// Rejected counts 429/503 answers by reason.
	Rejected map[string]int
	// Errors counts transport failures and non-admission statuses.
	Errors   int
	Outcomes []Outcome
}

// RejectedTotal sums the rejection counts across reasons.
func (c *ClientReport) RejectedTotal() int {
	n := 0
	for _, v := range c.Rejected {
		n += v
	}
	return n
}

// LatencyQuantile returns the q-quantile (0 < q <= 1) of the client's
// round-trip latencies, or 0 when no outcomes were recorded.
func (c *ClientReport) LatencyQuantile(q float64) time.Duration {
	if len(c.Outcomes) == 0 {
		return 0
	}
	lat := make([]time.Duration, len(c.Outcomes))
	for i, o := range c.Outcomes {
		lat[i] = o.Latency
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := int(q*float64(len(lat))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return lat[idx]
}

// Report is the whole run's outcome, one entry per client plan.
type Report struct {
	Clients []*ClientReport
}

// Client returns the named client's report, or nil.
func (r *Report) Client(name string) *ClientReport {
	for _, c := range r.Clients {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Submitted, Accepted, and RejectedByReason aggregate across clients.
func (r *Report) Submitted() int {
	n := 0
	for _, c := range r.Clients {
		n += c.Submitted
	}
	return n
}

func (r *Report) Accepted() int {
	n := 0
	for _, c := range r.Clients {
		n += c.Accepted
	}
	return n
}

func (r *Report) RejectedByReason() map[string]int {
	out := map[string]int{}
	for _, c := range r.Clients {
		for reason, n := range c.Rejected {
			out[reason] += n
		}
	}
	return out
}

// LatencyQuantile returns the q-quantile over every outcome of the run.
func (r *Report) LatencyQuantile(q float64) time.Duration {
	all := &ClientReport{}
	for _, c := range r.Clients {
		all.Outcomes = append(all.Outcomes, c.Outcomes...)
	}
	return all.LatencyQuantile(q)
}

// Run executes every client plan concurrently and blocks until all
// finish or ctx is canceled. Transport errors are recorded, not fatal:
// an overloaded service answering slowly must not crash the generator.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: empty BaseURL")
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	rep := &Report{Clients: make([]*ClientReport, len(cfg.Clients))}
	var wg sync.WaitGroup
	for i, plan := range cfg.Clients {
		rep.Clients[i] = &ClientReport{Name: plan.Name, Rejected: map[string]int{}}
		wg.Add(1)
		go func(plan ClientPlan, cr *ClientReport) {
			defer wg.Done()
			runClient(ctx, httpc, cfg.BaseURL, plan, cr)
		}(plan, rep.Clients[i])
	}
	wg.Wait()
	return rep, ctx.Err()
}

func runClient(ctx context.Context, httpc *http.Client, base string, plan ClientPlan, cr *ClientReport) {
	for _, batch := range plan.Batches {
		if ctx.Err() != nil {
			return
		}
		body, err := json.Marshal(batch)
		if err != nil {
			cr.Errors++
			continue
		}
		cr.Submitted++
		out := post(ctx, httpc, base, plan.Name, body)
		cr.Outcomes = append(cr.Outcomes, out)
		switch {
		case out.Status == http.StatusOK:
			cr.Accepted++
		case out.Status == http.StatusTooManyRequests || out.Status == http.StatusServiceUnavailable:
			cr.Rejected[out.Reason]++
		default:
			cr.Errors++
		}
		if plan.Interval > 0 {
			select {
			case <-time.After(plan.Interval):
			case <-ctx.Done():
				return
			}
		}
	}
}

func post(ctx context.Context, httpc *http.Client, base, client string, body []byte) Outcome {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/ingest", bytes.NewReader(body))
	if err != nil {
		return Outcome{Latency: time.Since(start)}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ClientIDHeader, client)
	resp, err := httpc.Do(req)
	if err != nil {
		return Outcome{Latency: time.Since(start)}
	}
	defer resp.Body.Close()
	out := Outcome{Status: resp.StatusCode, Latency: time.Since(start)}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		var payload struct {
			Reason       string `json:"reason"`
			RetryAfterMS int64  `json:"retry_after_ms"`
		}
		if json.NewDecoder(resp.Body).Decode(&payload) == nil {
			out.Reason = payload.Reason
			out.RetryAfterMS = payload.RetryAfterMS
		}
	}
	return out
}
