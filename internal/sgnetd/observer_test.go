package sgnetd

import (
	"testing"

	"repro/internal/malgen"
	"repro/internal/sgnet"
	"repro/internal/simrng"
)

// TestDistributedSimulationEquivalence is the flagship integration test:
// the full dataset simulation with its ε pipeline routed through a real
// TCP gateway + sensors must produce byte-identical FSM path assignments
// to the monolithic in-process run. Sensors only proxy unknown activity
// and matured models are insensitive to extra exemplars, so the gateway's
// learning sequence converges to exactly the monolithic one.
func TestDistributedSimulationEquivalence(t *testing.T) {
	landscapeFor := func() *malgen.Landscape {
		l, err := malgen.Generate(malgen.SmallConfig(), simrng.New(77).Child("landscape"))
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	// Monolithic run.
	mono, err := sgnet.Simulate(landscapeFor(), sgnet.DefaultConfig(), simrng.New(77).Child("sgnet"))
	if err != nil {
		t.Fatal(err)
	}

	// Distributed run: gateway + 5 sensor processes over TCP.
	g := NewGateway(sgnet.DefaultConfig().MatureAfter)
	addr, err := g.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = g.Close(); g.Wait() }()
	obs, err := NewDeploymentObserver(addr.String(), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()

	dist, err := sgnet.SimulateWith(landscapeFor(), sgnet.DefaultConfig(), simrng.New(77).Child("sgnet"), obs)
	if err != nil {
		t.Fatal(err)
	}

	if mono.Dataset.EventCount() != dist.Dataset.EventCount() {
		t.Fatalf("event counts differ: %d vs %d", mono.Dataset.EventCount(), dist.Dataset.EventCount())
	}
	me, de := mono.Dataset.Events(), dist.Dataset.Events()
	for i := range me {
		if me[i].FSMPath != de[i].FSMPath {
			t.Fatalf("event %s: monolithic path %q != distributed path %q",
				me[i].ID, me[i].FSMPath, de[i].FSMPath)
		}
		if me[i].Sample.MD5 != de[i].Sample.MD5 {
			t.Fatalf("event %s: sample MD5 differs", me[i].ID)
		}
	}

	// The distributed run must actually have split the work: most traffic
	// handled locally by sensors, a learning-phase minority proxied.
	st := obs.Stats()
	if st.Proxied == 0 {
		t.Error("nothing proxied; the gateway oracle was never exercised")
	}
	if st.Local == 0 {
		t.Error("nothing handled locally; FSM sync is not working")
	}
	if st.Proxied >= st.Local {
		t.Errorf("proxied (%d) >= local (%d); sensors are not taking over", st.Proxied, st.Local)
	}
	if g.Stats().Observes != st.Proxied {
		t.Errorf("gateway observes (%d) != sensor proxied (%d)", g.Stats().Observes, st.Proxied)
	}
}

func TestNewDeploymentObserverValidation(t *testing.T) {
	if _, err := NewDeploymentObserver("127.0.0.1:1", 0); err == nil {
		t.Error("zero sensors must error")
	}
	if _, err := NewDeploymentObserver("127.0.0.1:1", 2); err == nil {
		t.Error("unreachable gateway must error")
	}
}

func TestSensorForIsStable(t *testing.T) {
	g := NewGateway(3)
	addr, err := g.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = g.Close(); g.Wait() }()
	obs, err := NewDeploymentObserver(addr.String(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	a := obs.sensorFor("192.0.2.77")
	for i := 0; i < 10; i++ {
		if obs.sensorFor("192.0.2.77") != a {
			t.Fatal("sensor routing is not stable")
		}
	}
	// Different honeypots spread over sensors.
	seen := map[*Sensor]bool{}
	for i := 0; i < 64; i++ {
		seen[obs.sensorFor(string(rune('a'+i)))] = true
	}
	if len(seen) < 2 {
		t.Error("routing does not spread honeypots over sensors")
	}
}

func TestSensorSync(t *testing.T) {
	g := NewGateway(3)
	addr, err := g.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = g.Close(); g.Wait() }()
	s, err := Dial(addr.String(), "s1")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := s.Stats().SnapshotsApplied
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().SnapshotsApplied != before+1 {
		t.Error("Sync must apply a fresh snapshot")
	}
}
