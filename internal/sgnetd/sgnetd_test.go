package sgnetd

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/exploit"
	"repro/internal/pe"
	"repro/internal/simrng"
	"repro/internal/simtime"
)

// startGateway spins up a gateway on an ephemeral port and tears it down
// with the test.
func startGateway(t *testing.T) (*Gateway, string) {
	t.Helper()
	g := NewGateway(3)
	addr, err := g.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = g.Close()
		g.Wait()
	})
	return g, addr.String()
}

func testImpl(t *testing.T, vulnName string, port int, vulnSeed, implSeed uint64, name string) *exploit.Implementation {
	t.Helper()
	v, err := exploit.NewVulnerability(vulnName, port, 3, vulnSeed)
	if err != nil {
		t.Fatal(err)
	}
	impl, err := exploit.NewImplementation(v, name, implSeed)
	if err != nil {
		t.Fatal(err)
	}
	return impl
}

func TestSensorHelloProvisioning(t *testing.T) {
	_, addr := startGateway(t)
	s, err := Dial(addr, "sensor-0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ID() != "sensor-0" {
		t.Errorf("ID = %q", s.ID())
	}
	if s.Version() != 0 {
		t.Errorf("fresh gateway version = %d", s.Version())
	}
	if got := s.Stats().SnapshotsApplied; got != 1 {
		t.Errorf("snapshots applied = %d, want 1 (welcome)", got)
	}
}

func TestDialValidation(t *testing.T) {
	_, addr := startGateway(t)
	if _, err := Dial(addr, ""); err == nil {
		t.Error("empty sensor id must error")
	}
	if _, err := Dial("127.0.0.1:1", "s"); err == nil {
		t.Error("unreachable gateway must error")
	}
}

func TestLearningFlowsThroughGateway(t *testing.T) {
	g, addr := startGateway(t)
	s, err := Dial(addr, "sensor-0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	impl := testImpl(t, "asn1", 445, 1, 2, "impl-a")
	r := simrng.New(1).Stream("traffic")

	// The first conversations are unknown: proxied to the gateway until
	// the model matures, after which the sensor handles traffic locally.
	for i := 0; i < 3; i++ {
		payload := make([]byte, 40+i)
		r.Read(payload)
		if _, _, err := s.Handle(445, impl.Dialog(r, payload).ClientMessages()); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Proxied != 3 {
		t.Fatalf("proxied = %d, want 3 (learning phase)", s.Stats().Proxied)
	}

	payload := make([]byte, 99)
	r.Read(payload)
	path, ok, err := s.Handle(445, impl.Dialog(r, payload).ClientMessages())
	if err != nil {
		t.Fatal(err)
	}
	if !ok || path == "" {
		t.Fatalf("post-maturity classification failed: %q %v", path, ok)
	}
	if s.Stats().Local != 1 {
		t.Errorf("local = %d, want 1 (autonomous handling)", s.Stats().Local)
	}
	if g.Version() == 0 {
		t.Error("gateway version must advance after maturing edges")
	}
}

func TestFSMSyncAcrossSensors(t *testing.T) {
	_, addr := startGateway(t)
	impl := testImpl(t, "asn1", 445, 1, 2, "impl-a")
	r := simrng.New(2).Stream("traffic")

	// Sensor A sees the activity and matures the gateway model.
	a, err := Dial(addr, "sensor-a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var pathA string
	for i := 0; i < 4; i++ {
		payload := make([]byte, 50+i)
		r.Read(payload)
		p, ok, err := a.Handle(445, impl.Dialog(r, payload).ClientMessages())
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			pathA = p
		}
	}
	if pathA == "" {
		t.Fatal("sensor A never classified")
	}

	// Sensor B connects afterwards: the welcome snapshot alone must let it
	// handle the same activity locally, with the same path identifier.
	b, err := Dial(addr, "sensor-b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	payload := make([]byte, 77)
	r.Read(payload)
	pathB, ok, err := b.Handle(445, impl.Dialog(r, payload).ClientMessages())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("sensor B could not classify after provisioning")
	}
	if b.Stats().Proxied != 0 {
		t.Errorf("sensor B proxied %d conversations, want 0", b.Stats().Proxied)
	}
	if pathA != pathB {
		t.Errorf("sensors disagree on path: %q vs %q", pathA, pathB)
	}
}

func TestEventCollection(t *testing.T) {
	g, addr := startGateway(t)
	s, err := Dial(addr, "sensor-0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ev := dataset.Event{
		ID:              "ev-000001",
		Time:            simtime.WeekStart(3),
		Attacker:        "198.51.100.7",
		Sensor:          "192.0.2.1",
		FSMPath:         "445:s3",
		DestPort:        445,
		Protocol:        "csend",
		Interaction:     "PUSH",
		PayloadPort:     9988,
		DownloadOutcome: "ok",
		Sample:          pe.Features{MD5: "abc", Size: 100},
	}
	if err := s.Report(ev); err != nil {
		t.Fatal(err)
	}
	// Duplicate IDs must be rejected by the gateway but keep the session
	// alive.
	if err := s.Report(ev); err == nil {
		t.Error("duplicate event must be rejected")
	}
	ev.ID = "ev-000002"
	if err := s.Report(ev); err != nil {
		t.Fatalf("session must survive a rejected event: %v", err)
	}

	if got := g.Dataset().EventCount(); got != 2 {
		t.Errorf("gateway collected %d events, want 2", got)
	}
	if got := g.Stats().Events; got != 2 {
		t.Errorf("stats events = %d", got)
	}
}

func TestConcurrentSensors(t *testing.T) {
	g, addr := startGateway(t)
	const sensors = 8
	const perSensor = 25

	impls := []*exploit.Implementation{
		testImpl(t, "asn1", 445, 1, 2, "impl-a"),
		testImpl(t, "asn1", 445, 1, 3, "impl-b"),
		testImpl(t, "dcom", 135, 4, 5, "impl-c"),
	}
	ports := []int{445, 445, 135}

	var wg sync.WaitGroup
	errs := make(chan error, sensors)
	for si := 0; si < sensors; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			s, err := Dial(addr, fmt.Sprintf("sensor-%02d", si))
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			r := simrng.New(uint64(100 + si)).Stream("traffic")
			for i := 0; i < perSensor; i++ {
				k := (si + i) % len(impls)
				payload := make([]byte, 30+r.Intn(60))
				r.Read(payload)
				if _, _, err := s.Handle(ports[k], impls[k].Dialog(r, payload).ClientMessages()); err != nil {
					errs <- fmt.Errorf("sensor %d: %w", si, err)
					return
				}
				ev := dataset.Event{
					ID:              fmt.Sprintf("ev-%02d-%03d", si, i),
					Time:            simtime.WeekStart(1).Add(time.Duration(i) * time.Minute),
					Attacker:        "198.51.100.7",
					Sensor:          fmt.Sprintf("192.0.2.%d", si+1),
					DestPort:        ports[k],
					Protocol:        "ftp",
					Interaction:     "PULL",
					PayloadPort:     21,
					DownloadOutcome: "failed",
				}
				if err := s.Report(ev); err != nil {
					errs <- fmt.Errorf("sensor %d report: %w", si, err)
					return
				}
			}
		}(si)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := g.Dataset().EventCount(); got != sensors*perSensor {
		t.Errorf("collected %d events, want %d", got, sensors*perSensor)
	}
	stats := g.Stats()
	if stats.Connections != sensors {
		t.Errorf("connections = %d, want %d", stats.Connections, sensors)
	}
	// After warmup most traffic must be handled without proxying: with 8
	// sensors x 25 conversations over 3 implementations, the proxied share
	// is bounded by the learning phase.
	if stats.Observes > sensors*perSensor/2 {
		t.Errorf("observes = %d of %d conversations; FSM sync is not reducing gateway load",
			stats.Observes, sensors*perSensor)
	}
}

func TestGatewayRejectsMalformedHello(t *testing.T) {
	_, addr := startGateway(t)
	// A raw client that skips the hello and sends an unknown type.
	s := &Sensor{}
	_ = s
	conn, err := netDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeMsg(conn.w, &Envelope{Type: MsgType("bogus")}); err != nil {
		t.Fatal(err)
	}
	env, err := readMsg(conn.r)
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != MsgError {
		t.Errorf("expected error envelope, got %q", env.Type)
	}
}

func TestGatewayCloseIdempotence(t *testing.T) {
	g := NewGateway(0)
	if _, err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err == nil {
		t.Error("second close must error")
	}
	g.Wait()
}

// TestGatewayCloseDrains exercises the deterministic shutdown contract:
// the listener refuses new sensors first, idle connections drain within
// the bounded grace period, every acknowledged event survives into the
// dataset, and Close itself returns only after all handlers exited.
func TestGatewayCloseDrains(t *testing.T) {
	g := NewGateway(0)
	g.DrainTimeout = 300 * time.Millisecond
	addr, err := g.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const sensors = 4
	conns := make([]*Sensor, sensors)
	for i := range conns {
		s, err := Dial(addr.String(), fmt.Sprintf("drain-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		conns[i] = s
		ev := dataset.Event{
			ID:              fmt.Sprintf("drain-ev-%d", i),
			Time:            simtime.WeekStart(1),
			Attacker:        "198.51.100.9",
			Sensor:          fmt.Sprintf("192.0.2.%d", i+1),
			FSMPath:         "445:s1",
			DestPort:        445,
			Protocol:        "csend",
			DownloadOutcome: "failed",
		}
		if err := s.Report(ev); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Idle connections are parked in reads; the deadline unblocks them at
	// the grace boundary, well before the force-close backstop.
	if elapsed > 2*time.Second {
		t.Fatalf("Close took %v, drain is not bounded", elapsed)
	}

	// Every acknowledged event must be in the collected dataset.
	if got := g.Dataset().EventCount(); got != sensors {
		t.Errorf("dataset has %d events after drain, want %d", got, sensors)
	}
	// New sensors are refused once Close ran.
	if _, err := Dial(addr.String(), "late"); err == nil {
		t.Error("dial after Close must fail")
	}
	// Drained sensors observe the disconnect on their next exchange.
	if err := conns[0].Report(dataset.Event{ID: "post-close", Time: simtime.WeekStart(1),
		Attacker: "a", Sensor: "s", DownloadOutcome: "failed"}); err == nil {
		t.Error("report after Close must fail")
	}
	g.Wait() // must not block after Close
}

// TestGatewayCloseMidExchange verifies a handler mid-dispatch completes
// the in-flight exchange: replies queued before the drain signal are
// delivered, not cut off.
func TestGatewayCloseMidExchange(t *testing.T) {
	g := NewGateway(0)
	g.DrainTimeout = 500 * time.Millisecond
	addr, err := g.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Dial(addr.String(), "mid")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Race reports against Close: each Report either fully succeeds
	// (ack received) or fails cleanly; acknowledged events are never
	// lost from the dataset.
	acked := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			ev := dataset.Event{
				ID:              fmt.Sprintf("mid-ev-%d", i),
				Time:            simtime.WeekStart(1),
				Attacker:        "198.51.100.10",
				Sensor:          "192.0.2.9",
				DownloadOutcome: "failed",
			}
			if err := s.Report(ev); err != nil {
				return
			}
			acked++
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if got := g.Dataset().EventCount(); got < acked {
		t.Errorf("dataset has %d events, sensor got %d acks: acknowledged events were lost", got, acked)
	}
}
