package sgnetd

import (
	"bufio"
	"net"

	"repro/internal/dataset"
	"repro/internal/simtime"
)

// rawConn is a minimal framed client for protocol-level tests.
type rawConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

func netDial(addr string) (*rawConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &rawConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}, nil
}

func (rc *rawConn) Close() error { return rc.c.Close() }

// testEventForReport builds a minimal valid event for failure-path tests.
func testEventForReport() dataset.Event {
	return dataset.Event{
		ID:              "ev-x",
		Time:            simtime.WeekStart(1),
		Attacker:        "1.2.3.4",
		Sensor:          "5.6.7.8",
		DestPort:        445,
		DownloadOutcome: "failed",
	}
}
