package sgnetd

import (
	"bufio"
	"fmt"
	"net"

	"repro/internal/dataset"
	"repro/internal/scriptgen"
)

// SensorStats counts how a sensor handled its traffic.
type SensorStats struct {
	// Local is the number of conversations classified autonomously.
	Local int
	// Proxied is the number of conversations forwarded to the gateway.
	Proxied int
	// SnapshotsApplied counts FSM refreshes received.
	SnapshotsApplied int
	// EventsReported counts event records shipped to the gateway.
	EventsReported int
}

// Sensor is one low-cost honeypot node: it classifies known activity with
// its local FSM copy and proxies unknown activity to the gateway.
//
// A Sensor is not safe for concurrent use; the deployment runs one
// goroutine per sensor, mirroring the single-threaded honeypot processes
// of the real system.
type Sensor struct {
	id    string
	conn  net.Conn
	r     *bufio.Reader
	w     *bufio.Writer
	fsms  *scriptgen.Set
	ver   int
	stats SensorStats
}

// Dial connects a sensor to the gateway and provisions it with the
// current FSM snapshot.
func Dial(addr, sensorID string) (*Sensor, error) {
	if sensorID == "" {
		return nil, fmt.Errorf("sgnetd: sensor needs an id")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sgnetd: sensor dial: %w", err)
	}
	s := &Sensor{
		id:   sensorID,
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
	}
	if err := writeMsg(s.w, &Envelope{Type: MsgHello, Hello: &Hello{SensorID: sensorID}}); err != nil {
		_ = conn.Close()
		return nil, err
	}
	env, err := readMsg(s.r)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if env.Type != MsgWelcome || env.Welcome == nil {
		_ = conn.Close()
		return nil, fmt.Errorf("sgnetd: expected welcome, got %q (%s)", env.Type, env.Error)
	}
	if err := s.applySnapshot(env.Welcome.Snapshot); err != nil {
		_ = conn.Close()
		return nil, err
	}
	return s, nil
}

func (s *Sensor) applySnapshot(snap scriptgen.SetSnapshot) error {
	fsms, err := scriptgen.RestoreSet(snap)
	if err != nil {
		return fmt.Errorf("sgnetd: sensor %s applying snapshot: %w", s.id, err)
	}
	s.fsms = fsms
	s.ver = snap.Version
	s.stats.SnapshotsApplied++
	return nil
}

// Handle classifies one conversation: locally when the sensor's FSM copy
// knows the activity, otherwise by proxying to the gateway (which learns
// from it). It returns the FSM path identifier and whether classification
// succeeded anywhere.
func (s *Sensor) Handle(port int, clientMessages [][]byte) (path string, ok bool, err error) {
	if path, ok := s.fsms.Classify(port, clientMessages); ok {
		s.stats.Local++
		return path, true, nil
	}
	s.stats.Proxied++
	err = writeMsg(s.w, &Envelope{Type: MsgObserve, Observe: &Observe{
		Port:         port,
		Messages:     clientMessages,
		KnownVersion: s.ver,
	}})
	if err != nil {
		return "", false, err
	}
	env, err := readMsg(s.r)
	if err != nil {
		return "", false, err
	}
	if env.Type != MsgObserveReply || env.ObserveReply == nil {
		return "", false, fmt.Errorf("sgnetd: expected observe-reply, got %q (%s)", env.Type, env.Error)
	}
	if env.ObserveReply.Snapshot != nil {
		if err := s.applySnapshot(*env.ObserveReply.Snapshot); err != nil {
			return "", false, err
		}
	}
	return env.ObserveReply.Path, env.ObserveReply.OK, nil
}

// Sync pulls the gateway's current FSM snapshot by re-introducing the
// sensor (the welcome reply always carries a fresh snapshot).
func (s *Sensor) Sync() error {
	if err := writeMsg(s.w, &Envelope{Type: MsgHello, Hello: &Hello{SensorID: s.id}}); err != nil {
		return err
	}
	env, err := readMsg(s.r)
	if err != nil {
		return err
	}
	if env.Type != MsgWelcome || env.Welcome == nil {
		return fmt.Errorf("sgnetd: expected welcome on sync, got %q (%s)", env.Type, env.Error)
	}
	return s.applySnapshot(env.Welcome.Snapshot)
}

// ClassifyLocal classifies against the sensor's local models only, never
// contacting the gateway. Use after Sync when the final models are needed
// for a bulk classification pass.
func (s *Sensor) ClassifyLocal(port int, clientMessages [][]byte) (string, bool) {
	return s.fsms.Classify(port, clientMessages)
}

// Report ships one completed event record to the gateway.
func (s *Sensor) Report(ev dataset.Event) error {
	if err := writeMsg(s.w, &Envelope{Type: MsgEvent, Event: &ev}); err != nil {
		return err
	}
	env, err := readMsg(s.r)
	if err != nil {
		return err
	}
	switch env.Type {
	case MsgAck:
		s.stats.EventsReported++
		return nil
	case MsgError:
		return fmt.Errorf("sgnetd: gateway rejected event: %s", env.Error)
	default:
		return fmt.Errorf("sgnetd: expected ack, got %q", env.Type)
	}
}

// Stats returns the sensor counters.
func (s *Sensor) Stats() SensorStats {
	return s.stats
}

// ID returns the sensor identifier.
func (s *Sensor) ID() string { return s.id }

// Version returns the sensor's current FSM snapshot version.
func (s *Sensor) Version() int { return s.ver }

// Close disconnects the sensor.
func (s *Sensor) Close() error {
	return s.conn.Close()
}
