package sgnetd

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/scriptgen"
)

// GatewayStats counts gateway activity.
type GatewayStats struct {
	Connections   int
	Observes      int
	Events        int
	SnapshotsSent int
	NewEdges      int
}

// defaultDrainTimeout bounds how long Close waits for in-flight sensor
// connections to finish their current exchange.
const defaultDrainTimeout = time.Second

// Gateway is the central entity of the deployment: master FSM models,
// sample-factory oracle, and event collection point.
type Gateway struct {
	// DrainTimeout is the grace period Close grants in-flight sensor
	// connections before force-closing them; zero selects one second.
	// Set it before Start.
	DrainTimeout time.Duration

	ln    net.Listener
	wg    sync.WaitGroup
	drain chan struct{}

	mu      sync.Mutex
	fsms    *scriptgen.Set
	version int
	ds      *dataset.Dataset
	stats   GatewayStats
	closed  bool
	conns   map[net.Conn]bool
}

// NewGateway creates a gateway. matureAfter <= 0 selects the scriptgen
// default exemplar threshold.
func NewGateway(matureAfter int) *Gateway {
	return &Gateway{
		fsms:  scriptgen.NewSet(matureAfter),
		ds:    dataset.New(),
		conns: make(map[net.Conn]bool),
		drain: make(chan struct{}),
	}
}

// Start listens on addr (use "127.0.0.1:0" for tests) and serves
// connections until Close. It returns the bound address.
func (g *Gateway) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sgnetd: gateway listen: %w", err)
	}
	g.ln = ln
	g.wg.Add(1)
	go g.acceptLoop()
	return ln.Addr(), nil
}

func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return // listener closed
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			_ = conn.Close()
			return
		}
		g.stats.Connections++
		g.conns[conn] = true
		g.mu.Unlock()
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.handle(conn)
			g.mu.Lock()
			delete(g.conns, conn)
			g.mu.Unlock()
		}()
	}
}

// handle serves one sensor connection.
func (g *Gateway) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		env, err := readMsg(r)
		if err != nil {
			return // connection closed or broken framing: drop the sensor
		}
		reply, fatal := g.dispatch(env)
		if reply != nil {
			if err := writeMsg(w, reply); err != nil {
				return
			}
		}
		if fatal {
			return
		}
		select {
		case <-g.drain:
			// Shutdown: the reply above completed the exchange; leave
			// before blocking in another read.
			return
		default:
		}
	}
}

// dispatch processes one message under the gateway lock and produces the
// reply.
func (g *Gateway) dispatch(env *Envelope) (reply *Envelope, fatal bool) {
	switch env.Type {
	case MsgHello:
		if env.Hello == nil || env.Hello.SensorID == "" {
			return errorEnvelope("hello without sensor id"), true
		}
		g.mu.Lock()
		snap := g.fsms.Snapshot(g.version)
		g.stats.SnapshotsSent++
		g.mu.Unlock()
		return &Envelope{Type: MsgWelcome, Welcome: &Welcome{Version: snap.Version, Snapshot: snap}}, false

	case MsgObserve:
		if env.Observe == nil {
			return errorEnvelope("observe without body"), true
		}
		g.mu.Lock()
		res := g.fsms.Learn(env.Observe.Port, env.Observe.Messages)
		if res.NewEdges > 0 {
			g.version++
			g.stats.NewEdges += res.NewEdges
		}
		path, ok := g.fsms.Classify(env.Observe.Port, env.Observe.Messages)
		g.stats.Observes++
		out := &ObserveReply{Path: path, OK: ok, Version: g.version}
		if env.Observe.KnownVersion < g.version {
			snap := g.fsms.Snapshot(g.version)
			out.Snapshot = &snap
			g.stats.SnapshotsSent++
		}
		g.mu.Unlock()
		return &Envelope{Type: MsgObserveReply, ObserveReply: out}, false

	case MsgEvent:
		if env.Event == nil {
			return errorEnvelope("event without body"), true
		}
		g.mu.Lock()
		err := g.ds.AddEvent(*env.Event)
		if err == nil {
			g.stats.Events++
		}
		g.mu.Unlock()
		if err != nil {
			return errorEnvelope(err.Error()), false
		}
		return &Envelope{Type: MsgAck}, false

	default:
		return errorEnvelope(fmt.Sprintf("unexpected message type %q", env.Type)), true
	}
}

func errorEnvelope(msg string) *Envelope {
	return &Envelope{Type: MsgError, Error: msg}
}

// Close shuts the gateway down deterministically: the listener closes
// first so no new sensor joins the drain, in-flight connections then get
// DrainTimeout to complete their current exchange (a handler mid-dispatch
// always delivers its reply), and only the connections still open at the
// deadline are force-closed. Close returns after every handler has
// exited, so the collected Dataset is complete and immutable from then
// on.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return errors.New("sgnetd: gateway already closed")
	}
	g.closed = true
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()

	var err error
	if g.ln != nil {
		err = g.ln.Close()
	}
	timeout := g.DrainTimeout
	if timeout <= 0 {
		timeout = defaultDrainTimeout
	}
	// Signal handlers to exit at their next exchange boundary, and bound
	// the reads of handlers parked waiting on a silent sensor.
	close(g.drain)
	deadline := time.Now().Add(timeout)
	for _, c := range conns {
		_ = c.SetDeadline(deadline)
	}
	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout + 100*time.Millisecond):
		// Stragglers blew the grace period (e.g. blocked writes the
		// deadline could not interrupt): sever them.
		g.mu.Lock()
		remaining := make([]net.Conn, 0, len(g.conns))
		for c := range g.conns {
			remaining = append(remaining, c)
		}
		g.mu.Unlock()
		for _, c := range remaining {
			_ = c.Close()
		}
		<-done
	}
	return err
}

// Wait blocks until every connection handler has exited. Close already
// drains; Wait remains for callers that observe shutdown from another
// goroutine.
func (g *Gateway) Wait() {
	g.wg.Wait()
}

// Dataset returns the centrally collected events. Callers must not use it
// concurrently with live sensors.
func (g *Gateway) Dataset() *dataset.Dataset {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ds
}

// Stats returns a copy of the gateway counters.
func (g *Gateway) Stats() GatewayStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Version returns the current FSM knowledge version.
func (g *Gateway) Version() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.version
}
