// Package sgnetd implements the distributed architecture of the paper's
// Figure 1 as real networked components: low-cost sensors that handle
// known activity autonomously with their local FSM models, and a central
// gateway that owns the master models, plays the sample-factory oracle
// for unknown activity, refines the FSMs, and distributes the refined
// knowledge back to the sensors.
//
// The wire protocol is length-prefixed JSON over any net.Conn. Sensors
// are request/response clients: an Observe round trip classifies (and, on
// the gateway, learns from) one conversation and piggybacks an FSM
// snapshot whenever the sensor's model version is stale — the FSM-sync
// path of the figure. Event reports flow to the gateway's dataset, the
// central collection point of the deployment.
package sgnetd

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/scriptgen"
)

// MsgType discriminates protocol envelopes.
type MsgType string

// Protocol message types.
const (
	// MsgHello introduces a sensor; the gateway replies with MsgWelcome.
	MsgHello MsgType = "hello"
	// MsgWelcome carries the current FSM snapshot to a new sensor.
	MsgWelcome MsgType = "welcome"
	// MsgObserve proxies an unknown conversation to the gateway.
	MsgObserve MsgType = "observe"
	// MsgObserveReply returns the classification and, when the sensor is
	// stale, a fresh snapshot.
	MsgObserveReply MsgType = "observe-reply"
	// MsgEvent reports one completed attack observation.
	MsgEvent MsgType = "event"
	// MsgAck acknowledges an event report.
	MsgAck MsgType = "ack"
	// MsgError reports a fatal protocol error.
	MsgError MsgType = "error"
)

// Envelope is the single wire message type.
type Envelope struct {
	Type         MsgType        `json:"type"`
	Hello        *Hello         `json:"hello,omitempty"`
	Welcome      *Welcome       `json:"welcome,omitempty"`
	Observe      *Observe       `json:"observe,omitempty"`
	ObserveReply *ObserveReply  `json:"observe_reply,omitempty"`
	Event        *dataset.Event `json:"event,omitempty"`
	Error        string         `json:"error,omitempty"`
}

// Hello introduces a sensor to the gateway.
type Hello struct {
	SensorID string `json:"sensor_id"`
}

// Welcome provisions a new sensor with the current models.
type Welcome struct {
	Version  int                   `json:"version"`
	Snapshot scriptgen.SetSnapshot `json:"snapshot"`
}

// Observe proxies one conversation for learning + classification.
type Observe struct {
	Port int `json:"port"`
	// Messages are the client-to-server messages of the conversation.
	Messages [][]byte `json:"messages"`
	// KnownVersion is the sensor's current snapshot version; the gateway
	// attaches a fresh snapshot when it is stale.
	KnownVersion int `json:"known_version"`
}

// ObserveReply is the gateway's answer to Observe.
type ObserveReply struct {
	Path     string                 `json:"path"`
	OK       bool                   `json:"ok"`
	Version  int                    `json:"version"`
	Snapshot *scriptgen.SetSnapshot `json:"snapshot,omitempty"`
}

// maxMessageSize bounds a single protocol message; FSM snapshots of a
// full deployment stay well under this.
const maxMessageSize = 16 << 20

// writeMsg frames and writes one envelope.
func writeMsg(w *bufio.Writer, env *Envelope) error {
	raw, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("sgnetd: marshaling %s: %w", env.Type, err)
	}
	if len(raw) > maxMessageSize {
		return fmt.Errorf("sgnetd: message of %d bytes exceeds limit", len(raw))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(raw)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(raw); err != nil {
		return err
	}
	return w.Flush()
}

// readMsg reads one framed envelope.
func readMsg(r *bufio.Reader) (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxMessageSize {
		return nil, fmt.Errorf("sgnetd: declared message size %d exceeds limit", n)
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, err
	}
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("sgnetd: decoding message: %w", err)
	}
	return &env, nil
}
