package sgnetd

import (
	"fmt"
	"hash/fnv"
)

// DeploymentObserver adapts a running gateway + sensor deployment to the
// sgnet.EpsilonObserver interface, so the full dataset simulation can run
// its ε pipeline through real networked components (Figure 1) instead of
// the in-process FSM set.
//
// Conversations are routed to a sensor chosen by a stable hash of the
// attacked honeypot address — the same honeypot is always served by the
// same sensor process, like the real deployment.
type DeploymentObserver struct {
	sensors []*Sensor
}

// NewDeploymentObserver dials n sensor connections against the gateway at
// addr.
func NewDeploymentObserver(addr string, n int) (*DeploymentObserver, error) {
	if n < 1 {
		return nil, fmt.Errorf("sgnetd: observer needs at least one sensor, got %d", n)
	}
	o := &DeploymentObserver{sensors: make([]*Sensor, 0, n)}
	for i := 0; i < n; i++ {
		s, err := Dial(addr, fmt.Sprintf("sensor-%03d", i))
		if err != nil {
			o.Close()
			return nil, err
		}
		o.sensors = append(o.sensors, s)
	}
	return o, nil
}

// sensorFor routes a honeypot address to one sensor process.
func (o *DeploymentObserver) sensorFor(sensorKey string) *Sensor {
	h := fnv.New32a()
	_, _ = h.Write([]byte(sensorKey))
	return o.sensors[int(h.Sum32())%len(o.sensors)]
}

// Observe implements sgnet.EpsilonObserver.
func (o *DeploymentObserver) Observe(sensorKey string, port int, msgs [][]byte) (bool, error) {
	s := o.sensorFor(sensorKey)
	before := s.Stats().Proxied
	if _, _, err := s.Handle(port, msgs); err != nil {
		return false, err
	}
	return s.Stats().Proxied > before, nil
}

// Finalize implements sgnet.EpsilonObserver: the classification sensor
// pulls the gateway's final FSM snapshot.
func (o *DeploymentObserver) Finalize() error {
	return o.sensors[0].Sync()
}

// Classify implements sgnet.EpsilonObserver using the synced local models
// of the first sensor; no network round trip per event.
func (o *DeploymentObserver) Classify(port int, msgs [][]byte) (string, bool, error) {
	path, ok := o.sensors[0].ClassifyLocal(port, msgs)
	return path, ok, nil
}

// Stats aggregates the sensors' counters.
func (o *DeploymentObserver) Stats() SensorStats {
	var total SensorStats
	for _, s := range o.sensors {
		st := s.Stats()
		total.Local += st.Local
		total.Proxied += st.Proxied
		total.SnapshotsApplied += st.SnapshotsApplied
		total.EventsReported += st.EventsReported
	}
	return total
}

// Close disconnects every sensor.
func (o *DeploymentObserver) Close() {
	for _, s := range o.sensors {
		if s != nil {
			_ = s.Close()
		}
	}
}
