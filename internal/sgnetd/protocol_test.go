package sgnetd

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	in := &Envelope{Type: MsgHello, Hello: &Hello{SensorID: "s1"}}
	if err := writeMsg(w, in); err != nil {
		t.Fatal(err)
	}
	out, err := readMsg(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != MsgHello || out.Hello == nil || out.Hello.SensorID != "s1" {
		t.Errorf("round trip = %+v", out)
	}
}

func TestReadMsgRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxMessageSize+1)
	buf.Write(hdr[:])
	if _, err := readMsg(bufio.NewReader(&buf)); err == nil {
		t.Error("oversize declaration must be rejected")
	}
}

func TestReadMsgRejectsTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("short")
	if _, err := readMsg(bufio.NewReader(&buf)); err == nil {
		t.Error("truncated body must be rejected")
	}
}

func TestReadMsgRejectsBadJSON(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, err := readMsg(bufio.NewReader(&buf)); err == nil {
		t.Error("malformed JSON must be rejected")
	}
}

func TestReadMsgEmptyStream(t *testing.T) {
	if _, err := readMsg(bufio.NewReader(strings.NewReader(""))); err == nil {
		t.Error("empty stream must error")
	}
}

func TestBinaryMessagesSurviveJSON(t *testing.T) {
	// Observe messages carry raw protocol bytes, including non-UTF8.
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	raw := [][]byte{{0x00, 0xFF, 0x80, 0x41}, {0xEB, 0xFE}}
	in := &Envelope{Type: MsgObserve, Observe: &Observe{Port: 445, Messages: raw}}
	if err := writeMsg(w, in); err != nil {
		t.Fatal(err)
	}
	out, err := readMsg(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Observe.Messages) != 2 {
		t.Fatalf("messages = %d", len(out.Observe.Messages))
	}
	for i := range raw {
		if !bytes.Equal(out.Observe.Messages[i], raw[i]) {
			t.Errorf("message %d corrupted: %x vs %x", i, out.Observe.Messages[i], raw[i])
		}
	}
}

func TestSensorRejectsNonWelcome(t *testing.T) {
	// A fake gateway that answers hello with an error envelope.
	g := NewGateway(3)
	addr, err := g.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = g.Close(); g.Wait() }()

	// Speaking the wrong first message makes the gateway answer MsgError,
	// which Dial must surface.
	conn, err := netDial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeMsg(conn.w, &Envelope{Type: MsgObserve}); err != nil {
		t.Fatal(err)
	}
	env, err := readMsg(conn.r)
	if err != nil {
		t.Fatal(err)
	}
	// Observe without a prior hello is served (the gateway is stateless per
	// message) but an empty body is an error.
	if env.Type != MsgError {
		t.Errorf("expected error for empty observe, got %q", env.Type)
	}
}

func TestHandleAfterGatewayGone(t *testing.T) {
	g := NewGateway(3)
	addr, err := g.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Dial(addr.String(), "s1")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_ = g.Close()
	g.Wait()

	// A proxied conversation must fail cleanly once the gateway is gone.
	if _, _, err := s.Handle(445, [][]byte{{1, 2, 3}}); err == nil {
		t.Error("Handle must fail when the gateway is unreachable")
	}
	if err := s.Report(testEventForReport()); err == nil {
		t.Error("Report must fail when the gateway is unreachable")
	}
}
