package sandbox

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/behavior"
	"repro/internal/netmodel"
	"repro/internal/simrng"
	"repro/internal/simtime"
)

func window(startWeek, endWeek int) simtime.Interval {
	return simtime.Interval{Start: simtime.WeekStart(startWeek), End: simtime.WeekStart(endWeek)}
}

func TestEnvironmentDNS(t *testing.T) {
	env := NewEnvironment()
	ip := netmodel.MustParseIP("203.0.113.5")
	env.AddDNS("cnc.example.net", ip, window(0, 10))

	if got, ok := env.ResolveDNS("cnc.example.net", simtime.WeekStart(5)); !ok || got != ip {
		t.Errorf("ResolveDNS in window = %v %v", got, ok)
	}
	if _, ok := env.ResolveDNS("cnc.example.net", simtime.WeekStart(20)); ok {
		t.Error("ResolveDNS after takedown must fail")
	}
	if _, ok := env.ResolveDNS("other.example.net", simtime.WeekStart(5)); ok {
		t.Error("unknown name must not resolve")
	}
}

func TestEnvironmentDefaultWindowIsStudy(t *testing.T) {
	env := NewEnvironment()
	env.AddDNS("x.example", 1)
	if _, ok := env.ResolveDNS("x.example", simtime.StudyStart); !ok {
		t.Error("default window must cover study start")
	}
	if _, ok := env.ResolveDNS("x.example", simtime.StudyEnd.Add(-time.Hour)); !ok {
		t.Error("default window must cover study end")
	}
}

func TestEnvironmentReachable(t *testing.T) {
	env := NewEnvironment()
	env.AddEndpoint("203.0.113.5", 6667, window(0, 10))
	env.AddDNS("cnc.example.net", netmodel.MustParseIP("203.0.113.5"), window(0, 20))

	if !env.Reachable("203.0.113.5", 6667, simtime.WeekStart(5)) {
		t.Error("literal address must be reachable in window")
	}
	if env.Reachable("203.0.113.5", 6667, simtime.WeekStart(15)) {
		t.Error("endpoint must be unreachable outside window")
	}
	if !env.Reachable("cnc.example.net", 6667, simtime.WeekStart(5)) {
		t.Error("name must resolve and reach")
	}
	// Week 15: DNS alive, endpoint down.
	if env.Reachable("cnc.example.net", 6667, simtime.WeekStart(15)) {
		t.Error("endpoint down must dominate")
	}
	if env.Reachable("unknown.example.net", 6667, simtime.WeekStart(5)) {
		t.Error("unresolvable name must be unreachable")
	}
	if env.Reachable("203.0.113.9", 6667, simtime.WeekStart(5)) {
		t.Error("unregistered endpoint must be unreachable")
	}
}

func TestEnvironmentIRC(t *testing.T) {
	env := NewEnvironment()
	server := netmodel.MustParseIP("67.43.232.36")
	cmds := &behavior.Program{Name: "cmds", Ops: []behavior.Op{{Kind: behavior.OpScanNetwork, Port: 445}}}
	env.AddIRC(server, 6667, "#kok6", cmds, window(0, 8))

	got, ok := env.IRCCommands("67.43.232.36", 6667, "#kok6", simtime.WeekStart(3))
	if !ok || got != cmds {
		t.Errorf("IRCCommands = %v %v", got, ok)
	}
	if _, ok := env.IRCCommands("67.43.232.36", 6667, "#kok6", simtime.WeekStart(9)); ok {
		t.Error("IRC room must go dark outside window")
	}
	if _, ok := env.IRCCommands("67.43.232.36", 6667, "#other", simtime.WeekStart(3)); ok {
		t.Error("unknown room must fail")
	}
	// AddIRC must register the endpoint too.
	if !env.Reachable("67.43.232.36", 6667, simtime.WeekStart(3)) {
		t.Error("IRC server endpoint must be reachable in window")
	}
}

func TestEnvironmentHTTP(t *testing.T) {
	env := NewEnvironment()
	env.AddDNS("iliketay.cn", netmodel.MustParseIP("198.51.100.9"), window(0, 30))
	comp := &behavior.Program{Name: "comp1", Ops: []behavior.Op{{Kind: behavior.OpCreateFile, Path: "c:\\a.exe"}}}
	env.AddHTTP("iliketay.cn", "/one.exe", comp, window(0, 30))

	if _, ok := env.HTTPFetch("iliketay.cn", "/one.exe", simtime.WeekStart(2)); !ok {
		t.Error("fetch in window must succeed")
	}
	if _, ok := env.HTTPFetch("iliketay.cn", "/one.exe", simtime.WeekStart(40)); ok {
		t.Error("fetch after takedown must fail")
	}
	if _, ok := env.HTTPFetch("iliketay.cn", "/missing.exe", simtime.WeekStart(2)); ok {
		t.Error("unknown path must fail")
	}
}

func botProgram() *behavior.Program {
	return &behavior.Program{
		Name: "bot",
		Ops: []behavior.Op{
			{Kind: behavior.OpCreateFile, Path: `C:\WINDOWS\system32\svhost.exe`},
			{Kind: behavior.OpSetRegistry, Path: `HKLM\...\Run\svhost`},
			{Kind: behavior.OpIRCConnect, Host: "67.43.232.36", Port: 6667, Channel: "#kok6", OnFailSkip: 0},
		},
	}
}

func TestRunEmitsExpectedProfile(t *testing.T) {
	env := NewEnvironment()
	cmds := &behavior.Program{Name: "cmds", Ops: []behavior.Op{{Kind: behavior.OpScanNetwork, Port: 445}}}
	env.AddIRC(netmodel.MustParseIP("67.43.232.36"), 6667, "#kok6", cmds, window(0, 20))

	sb := New(env, 0, simrng.New(1))
	rep := sb.Run(botProgram(), simtime.WeekStart(5), "sample-1")

	want := []string{
		"file-create|C:\\WINDOWS\\system32\\svhost.exe",
		"registry-set|HKLM\\...\\Run\\svhost",
		"irc|67.43.232.36:6667|#kok6",
		"scan|tcp/445",
	}
	for _, f := range want {
		if !rep.Profile.Has(f) {
			t.Errorf("profile missing %q; got %v", f, rep.Profile.Features())
		}
	}
	if rep.Degraded || rep.BudgetExhausted {
		t.Errorf("unexpected flags: %+v", rep)
	}
}

func TestRunEnvironmentChangesProfile(t *testing.T) {
	env := NewEnvironment()
	cmds := &behavior.Program{Name: "cmds", Ops: []behavior.Op{{Kind: behavior.OpScanNetwork, Port: 445}}}
	env.AddIRC(netmodel.MustParseIP("67.43.232.36"), 6667, "#kok6", cmds, window(0, 10))

	sb := New(env, 0, simrng.New(1))
	alive := sb.Run(botProgram(), simtime.WeekStart(5), "s1")
	dead := sb.Run(botProgram(), simtime.WeekStart(15), "s2")

	if !alive.Profile.Has("irc|67.43.232.36:6667|#kok6") {
		t.Error("alive run must join IRC")
	}
	if dead.Profile.Has("irc|67.43.232.36:6667|#kok6") {
		t.Error("dead run must not join IRC")
	}
	if !dead.Profile.Has("tcp-connect|67.43.232.36:6667|fail") {
		t.Errorf("dead run must record the failed connection; got %v", dead.Profile.Features())
	}
	if sim := alive.Profile.Jaccard(dead.Profile); sim > 0.8 {
		t.Errorf("profiles too similar (%.2f) despite environment change", sim)
	}
}

func TestRunOnFailSkip(t *testing.T) {
	prog := &behavior.Program{
		Name: "dl",
		Ops: []behavior.Op{
			{Kind: behavior.OpDNSResolve, Host: "iliketay.cn", OnFailSkip: 2},
			{Kind: behavior.OpHTTPDownload, Host: "iliketay.cn", Path: "/one.exe"},
			{Kind: behavior.OpHTTPDownload, Host: "iliketay.cn", Path: "/two.exe"},
			{Kind: behavior.OpCreateMutex, Path: "done"},
		},
	}
	sb := New(NewEnvironment(), 0, simrng.New(2)) // empty env: DNS fails
	rep := sb.Run(prog, simtime.WeekStart(1), "s")
	if !rep.Profile.Has("dns-resolve|iliketay.cn|fail") {
		t.Error("missing failed dns feature")
	}
	for _, f := range rep.Profile.Features() {
		if f == "http-download|iliketay.cn/one.exe|fail" {
			t.Error("downloads must be skipped after dns failure")
		}
	}
	if !rep.Profile.Has("mutex-create|done") {
		t.Error("op after skip range must execute")
	}
}

func TestRunComponentDownloadRecursion(t *testing.T) {
	env := NewEnvironment()
	env.AddDNS("iliketay.cn", netmodel.MustParseIP("198.51.100.9"))
	inner := &behavior.Program{Name: "component-a", Ops: []behavior.Op{
		{Kind: behavior.OpSetRegistry, Path: `HKLM\...\Run\comp`},
	}}
	env.AddHTTP("iliketay.cn", "/one.exe", inner)

	prog := &behavior.Program{Name: "dropper", Ops: []behavior.Op{
		{Kind: behavior.OpHTTPDownload, Host: "iliketay.cn", Path: "/one.exe"},
	}}
	sb := New(env, 0, simrng.New(3))
	rep := sb.Run(prog, simtime.WeekStart(1), "s")
	if !rep.Profile.Has("http-download|iliketay.cn/one.exe|ok") {
		t.Error("download feature missing")
	}
	if !rep.Profile.Has("process-create|component-a") {
		t.Error("component execution feature missing")
	}
	if !rep.Profile.Has(`registry-set|HKLM\...\Run\comp`) {
		t.Error("component behaviour missing from profile")
	}
}

func TestRunVolatileFeatures(t *testing.T) {
	prog := &behavior.Program{Name: "v", Ops: []behavior.Op{
		{Kind: behavior.OpCreateMutex, Path: "rnd", Volatile: true},
		{Kind: behavior.OpCreateFile, Path: "stable"},
	}}
	sb := New(nil, 0, simrng.New(4))
	a := sb.Run(prog, simtime.WeekStart(1), "run-a")
	b := sb.Run(prog, simtime.WeekStart(1), "run-b")

	if !a.Profile.Has("file-create|stable") || !b.Profile.Has("file-create|stable") {
		t.Fatal("stable feature missing")
	}
	// The volatile mutex feature must differ between runs.
	var mutexA, mutexB string
	for _, f := range a.Profile.Features() {
		if len(f) > 13 && f[:13] == "mutex-create|" {
			mutexA = f
		}
	}
	for _, f := range b.Profile.Features() {
		if len(f) > 13 && f[:13] == "mutex-create|" {
			mutexB = f
		}
	}
	if mutexA == "" || mutexB == "" || mutexA == mutexB {
		t.Errorf("volatile features must differ per run: %q vs %q", mutexA, mutexB)
	}
}

func TestRunDeterministicPerKey(t *testing.T) {
	prog := &behavior.Program{Name: "v", Fragility: 0.5, Ops: []behavior.Op{
		{Kind: behavior.OpCreateMutex, Path: "rnd", Volatile: true},
		{Kind: behavior.OpCreateFile, Path: "stable"},
	}}
	sb := New(nil, 0, simrng.New(5))
	a := sb.Run(prog, simtime.WeekStart(1), "same-key")
	b := sb.Run(prog, simtime.WeekStart(1), "same-key")
	fa, fb := a.Profile.Features(), b.Profile.Features()
	if len(fa) != len(fb) {
		t.Fatalf("profiles differ: %v vs %v", fa, fb)
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("profiles differ at %d: %v vs %v", i, fa, fb)
		}
	}
}

func TestRunFragility(t *testing.T) {
	ops := make([]behavior.Op, 10)
	for i := range ops {
		ops[i] = behavior.Op{Kind: behavior.OpCreateFile, Path: fmt.Sprintf("f%d", i)}
	}
	prog := &behavior.Program{Name: "fragile", Fragility: 1, Ops: ops}
	sb := New(nil, 0, simrng.New(6))
	rep := sb.Run(prog, simtime.WeekStart(1), "s")
	if !rep.Degraded {
		t.Fatal("fragility 1 must degrade")
	}
	noise := 0
	normal := 0
	for _, f := range rep.Profile.Features() {
		if len(f) >= 6 && f[:6] == "noise|" {
			noise++
		} else {
			normal++
		}
	}
	if noise == 0 {
		t.Error("degraded run must contain noise features")
	}
	if normal >= len(ops) {
		t.Error("degraded run must truncate the op sequence")
	}
}

func TestRunFragilityRate(t *testing.T) {
	prog := &behavior.Program{Name: "p", Fragility: 0.2, Ops: []behavior.Op{
		{Kind: behavior.OpCreateFile, Path: "f"},
		{Kind: behavior.OpCreateFile, Path: "g"},
	}}
	sb := New(nil, 0, simrng.New(7))
	degraded := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if sb.Run(prog, simtime.WeekStart(1), fmt.Sprintf("s%d", i)).Degraded {
			degraded++
		}
	}
	rate := float64(degraded) / n
	if rate < 0.15 || rate > 0.25 {
		t.Errorf("degraded rate = %.3f, want ~0.2", rate)
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	prog := &behavior.Program{Name: "sleeper", Ops: []behavior.Op{
		{Kind: behavior.OpCreateFile, Path: "before"},
		{Kind: behavior.OpSleep, Seconds: 600},
		{Kind: behavior.OpCreateFile, Path: "after"},
	}}
	sb := New(nil, 0, simrng.New(8))
	rep := sb.Run(prog, simtime.WeekStart(1), "s")
	if !rep.BudgetExhausted {
		t.Error("10-minute sleep must exhaust the 4-minute budget")
	}
	if !rep.Profile.Has("file-create|before") {
		t.Error("pre-sleep op must run")
	}
	if rep.Profile.Has("file-create|after") {
		t.Error("post-sleep op must not run")
	}
}

func TestRunCustomBudget(t *testing.T) {
	prog := &behavior.Program{Name: "sleeper", Ops: []behavior.Op{
		{Kind: behavior.OpSleep, Seconds: 30},
		{Kind: behavior.OpCreateFile, Path: "after"},
	}}
	sb := New(nil, time.Hour, simrng.New(9))
	rep := sb.Run(prog, simtime.WeekStart(1), "s")
	if rep.BudgetExhausted || !rep.Profile.Has("file-create|after") {
		t.Errorf("hour budget must allow completion: %+v", rep)
	}
}

func TestRunRecursionDepthBounded(t *testing.T) {
	env := NewEnvironment()
	env.AddDNS("loop.example", 1)
	// A component that downloads itself forever.
	self := &behavior.Program{Name: "self"}
	self.Ops = []behavior.Op{{Kind: behavior.OpHTTPDownload, Host: "loop.example", Path: "/self"}}
	env.AddHTTP("loop.example", "/self", self)

	sb := New(env, time.Hour, simrng.New(10))
	rep := sb.Run(self, simtime.WeekStart(1), "s")
	if rep.OpsExecuted > 20 {
		t.Errorf("recursion not bounded: %d ops", rep.OpsExecuted)
	}
}

func BenchmarkRun(b *testing.B) {
	env := NewEnvironment()
	cmds := &behavior.Program{Name: "cmds", Ops: []behavior.Op{{Kind: behavior.OpScanNetwork, Port: 445}}}
	env.AddIRC(netmodel.MustParseIP("67.43.232.36"), 6667, "#kok6", cmds)
	sb := New(env, 0, simrng.New(11))
	prog := botProgram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sb.Run(prog, simtime.WeekStart(5), "bench")
	}
}
