package sandbox

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/behavior"
	"repro/internal/simrng"
)

// Default execution parameters. The paper states each Anubis behavioural
// profile corresponds to four minutes of execution.
const (
	// DefaultBudget is the simulated execution time limit.
	DefaultBudget = 4 * time.Minute
	// opCost is the simulated duration of one non-sleep operation.
	opCost = 2 * time.Second
	// maxNoiseFeatures bounds the run-specific noise added to degraded
	// executions.
	maxNoiseFeatures = 6
	// maxDepth bounds recursive component execution.
	maxDepth = 4
)

// Sandbox executes behavior programs against an environment.
//
// Run is safe for concurrent use: the environment is read-only after
// construction and every run derives its randomness from the run key, so
// enrichment pipelines may execute samples on a worker pool.
type Sandbox struct {
	env    *Environment
	budget time.Duration
	rng    *simrng.Source
}

// New creates a sandbox. A zero budget selects DefaultBudget; a nil
// environment means every network operation fails (an air-gapped sandbox).
func New(env *Environment, budget time.Duration, rng *simrng.Source) *Sandbox {
	if env == nil {
		env = NewEnvironment()
	}
	if budget <= 0 {
		budget = DefaultBudget
	}
	if rng == nil {
		rng = simrng.New(0)
	}
	return &Sandbox{env: env, budget: budget, rng: rng}
}

// Report is the outcome of one sandbox execution.
type Report struct {
	// Profile is the behavioral profile observed during the run.
	Profile *behavior.Profile
	// At is the wall-clock instant the execution started; network outcomes
	// depend on it.
	At time.Time
	// Degraded reports that the fragility model fired: the sample crashed
	// after a prefix of its operations and the profile contains noise.
	Degraded bool
	// OpsExecuted counts the operations actually performed (including
	// nested components).
	OpsExecuted int
	// BudgetExhausted reports that the four-minute window ended before the
	// program did.
	BudgetExhausted bool
}

// Run executes prog at the given instant. runKey distinguishes repeated
// analyses of the same sample: re-running with a different key redraws the
// fragility and volatile-feature randomness, which is what makes
// re-execution healing (§4.2) work.
func (sb *Sandbox) Run(prog *behavior.Program, at time.Time, runKey string) *Report {
	r := sb.rng.Child("run").Stream(runKey)
	rep := &Report{Profile: behavior.NewProfile(), At: at}

	limit := len(prog.Ops)
	if prog.Fragility > 0 && r.Float64() < prog.Fragility {
		rep.Degraded = true
		if len(prog.Ops) > 1 {
			limit = 1 + r.Intn(len(prog.Ops)-1)
		}
		for i, n := 0, 1+r.Intn(maxNoiseFeatures); i < n; i++ {
			rep.Profile.Add(fmt.Sprintf("noise|%08x", r.Uint32()))
		}
	}

	exec := execution{sb: sb, r: r, rep: rep, deadline: at.Add(sb.budget)}
	exec.run(prog.Ops[:limit], at, 0)
	return rep
}

// execution tracks one run's simulated clock and recursion depth.
type execution struct {
	sb       *Sandbox
	r        *rand.Rand
	rep      *Report
	deadline time.Time
}

// run interprets ops starting at the simulated instant now and returns the
// instant after the last executed op.
func (ex *execution) run(ops []behavior.Op, now time.Time, depth int) time.Time {
	if depth > maxDepth {
		return now
	}
	skip := 0
	for _, op := range ops {
		if skip > 0 {
			skip--
			continue
		}
		if !now.Before(ex.deadline) {
			ex.rep.BudgetExhausted = true
			return now
		}
		var ok bool
		now, ok = ex.step(op, now, depth)
		if !ok && op.OnFailSkip > 0 {
			skip = op.OnFailSkip
		}
	}
	return now
}

// step executes one op, emits its profile features, and reports success.
func (ex *execution) step(op behavior.Op, now time.Time, depth int) (time.Time, bool) {
	ex.rep.OpsExecuted++
	cost := opCost
	if op.Kind == behavior.OpSleep {
		cost = time.Duration(op.Seconds) * time.Second
	}
	after := now.Add(cost)

	object := op.Path
	if op.Volatile {
		// Run-specific randomness in the observed object name (random
		// mutex names, temp files, ...): a per-run noise source.
		object = fmt.Sprintf("%s-%06x", op.Path, ex.r.Uint32()&0xffffff)
	}

	switch op.Kind {
	case behavior.OpCreateFile, behavior.OpWriteFile, behavior.OpDeleteFile,
		behavior.OpSetRegistry, behavior.OpCreateMutex, behavior.OpCreateProcess,
		behavior.OpInfectHTML:
		ex.rep.Profile.Add(behavior.FeatureOp(op.Kind, object))
		return after, true

	case behavior.OpSleep:
		return after, true

	case behavior.OpScanNetwork:
		ex.rep.Profile.Add(behavior.FeatureOp(op.Kind, fmt.Sprintf("tcp/%d", op.Port)))
		return after, true

	case behavior.OpDoS:
		ex.rep.Profile.Add(behavior.FeatureOp(op.Kind, op.Host))
		return after, true

	case behavior.OpDNSResolve:
		_, ok := ex.sb.env.ResolveDNS(op.Host, now)
		ex.rep.Profile.Add(behavior.FeatureNet(op.Kind, op.Host, ok))
		return after, ok

	case behavior.OpTCPConnect:
		ok := ex.sb.env.Reachable(op.Host, op.Port, now)
		ex.rep.Profile.Add(behavior.FeatureNet(op.Kind, fmt.Sprintf("%s:%d", op.Host, op.Port), ok))
		return after, ok

	case behavior.OpHTTPDownload:
		component, ok := ex.sb.env.HTTPFetch(op.Host, op.Path, now)
		ex.rep.Profile.Add(behavior.FeatureNet(op.Kind, op.Host+op.Path, ok))
		if !ok {
			return after, false
		}
		if component != nil {
			ex.rep.Profile.Add(behavior.FeatureOp(behavior.OpCreateProcess, component.Name))
			after = ex.run(component.Ops, after, depth+1)
		}
		return after, true

	case behavior.OpIRCConnect:
		commands, ok := ex.sb.env.IRCCommands(op.Host, op.Port, op.Channel, now)
		if !ok {
			ex.rep.Profile.Add(behavior.FeatureNet(behavior.OpTCPConnect,
				fmt.Sprintf("%s:%d", op.Host, op.Port), false))
			return after, false
		}
		ex.rep.Profile.Add(behavior.FeatureIRC(op.Host, op.Port, op.Channel))
		if commands != nil {
			after = ex.run(commands.Ops, after, depth+1)
		}
		return after, true

	default:
		return after, false
	}
}
