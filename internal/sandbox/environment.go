// Package sandbox implements an Anubis-class dynamic analysis system: it
// executes behavior programs against a simulated operating system and a
// mutable external network environment, under a bounded execution budget,
// and emits behavioral profiles.
//
// The environment is the key reproduction lever for §4.2 of the paper:
// sample behaviour depends on external conditions (availability of C&C
// servers, DNS entries removed from the database, malware distribution
// sites serving different component sets over time), so the same program
// executed at different times legitimately produces different profiles.
package sandbox

import (
	"fmt"
	"time"

	"repro/internal/behavior"
	"repro/internal/netmodel"
	"repro/internal/simtime"
)

// Environment models the external world a sandboxed sample can reach:
// DNS, plain TCP endpoints, IRC command-and-control servers, and HTTP
// malware-distribution sites. Every entry carries availability windows;
// anything not registered is unreachable.
type Environment struct {
	dns       map[string]*dnsEntry
	endpoints map[string][]simtime.Interval
	irc       map[string]*ircRoom
	http      map[string]*httpPath
}

type dnsEntry struct {
	ip      netmodel.IP
	windows []simtime.Interval
}

type ircRoom struct {
	commands *behavior.Program
	windows  []simtime.Interval
}

type httpPath struct {
	component *behavior.Program
	windows   []simtime.Interval
}

// NewEnvironment returns an empty environment in which every network
// operation fails.
func NewEnvironment() *Environment {
	return &Environment{
		dns:       make(map[string]*dnsEntry),
		endpoints: make(map[string][]simtime.Interval),
		irc:       make(map[string]*ircRoom),
		http:      make(map[string]*httpPath),
	}
}

func inWindows(windows []simtime.Interval, at time.Time) bool {
	for _, w := range windows {
		if w.Contains(at) {
			return true
		}
	}
	return false
}

func endpointKey(host string, port int) string {
	return fmt.Sprintf("%s:%d", host, port)
}

func ircKey(server string, port int, room string) string {
	return fmt.Sprintf("%s:%d/%s", server, port, room)
}

func httpKey(host, path string) string {
	return host + path
}

// AddDNS registers a DNS name resolving to ip during the given windows.
// With no windows, the entry is valid for the whole study period.
func (e *Environment) AddDNS(name string, ip netmodel.IP, windows ...simtime.Interval) {
	if len(windows) == 0 {
		windows = []simtime.Interval{simtime.StudyInterval()}
	}
	e.dns[name] = &dnsEntry{ip: ip, windows: windows}
}

// ResolveDNS resolves name at the given instant.
func (e *Environment) ResolveDNS(name string, at time.Time) (netmodel.IP, bool) {
	d, ok := e.dns[name]
	if !ok || !inWindows(d.windows, at) {
		return 0, false
	}
	return d.ip, true
}

// AddEndpoint marks host:port reachable during the given windows (the
// whole study period when none are given).
func (e *Environment) AddEndpoint(host string, port int, windows ...simtime.Interval) {
	if len(windows) == 0 {
		windows = []simtime.Interval{simtime.StudyInterval()}
	}
	e.endpoints[endpointKey(host, port)] = windows
}

// Reachable reports whether host:port accepts connections at the instant.
// Host names are resolved through the environment DNS first; dotted
// addresses are used literally.
func (e *Environment) Reachable(host string, port int, at time.Time) bool {
	target := host
	if _, err := netmodel.ParseIP(host); err != nil {
		ip, ok := e.ResolveDNS(host, at)
		if !ok {
			return false
		}
		target = ip.String()
	}
	w, ok := e.endpoints[endpointKey(target, port)]
	return ok && inWindows(w, at)
}

// AddIRC registers an IRC C&C room on server:port whose bot-herder sends
// the given command program during the windows. The endpoint is also
// registered as reachable for those windows.
func (e *Environment) AddIRC(server netmodel.IP, port int, room string, commands *behavior.Program, windows ...simtime.Interval) {
	if len(windows) == 0 {
		windows = []simtime.Interval{simtime.StudyInterval()}
	}
	e.irc[ircKey(server.String(), port, room)] = &ircRoom{commands: commands, windows: windows}
	e.endpoints[endpointKey(server.String(), port)] = append(e.endpoints[endpointKey(server.String(), port)], windows...)
}

// ExtendIRC adds availability windows to an already-registered IRC room
// without replacing its command program or existing windows. It reports
// whether the room was found. Poisoning campaigns use this to keep a
// victim's C&C observable while attacker samples execute, without
// perturbing the victim's own availability schedule.
func (e *Environment) ExtendIRC(server netmodel.IP, port int, room string, windows ...simtime.Interval) bool {
	rm, ok := e.irc[ircKey(server.String(), port, room)]
	if !ok {
		return false
	}
	rm.windows = append(rm.windows, windows...)
	key := endpointKey(server.String(), port)
	e.endpoints[key] = append(e.endpoints[key], windows...)
	return true
}

// ExtendHTTP adds availability windows to an already-registered
// malware-distribution path, reporting whether the path was found.
func (e *Environment) ExtendHTTP(host, path string, windows ...simtime.Interval) bool {
	p, ok := e.http[httpKey(host, path)]
	if !ok {
		return false
	}
	p.windows = append(p.windows, windows...)
	return true
}

// IRCCommands returns the command program a bot joining the room would
// receive at the instant.
func (e *Environment) IRCCommands(server string, port int, room string, at time.Time) (*behavior.Program, bool) {
	rm, ok := e.irc[ircKey(server, port, room)]
	if !ok || !inWindows(rm.windows, at) {
		return nil, false
	}
	return rm.commands, true
}

// AddHTTP registers a malware-distribution path serving a downloadable
// component during the windows. Pass a nil component for a plain payload
// with no further behaviour.
func (e *Environment) AddHTTP(host, path string, component *behavior.Program, windows ...simtime.Interval) {
	if len(windows) == 0 {
		windows = []simtime.Interval{simtime.StudyInterval()}
	}
	e.http[httpKey(host, path)] = &httpPath{component: component, windows: windows}
}

// HTTPFetch attempts to download host+path at the instant, returning the
// served component program (possibly nil) and whether the fetch succeeded.
// The host must resolve through the environment DNS unless it is a dotted
// address.
func (e *Environment) HTTPFetch(host, path string, at time.Time) (*behavior.Program, bool) {
	if _, err := netmodel.ParseIP(host); err != nil {
		if _, ok := e.ResolveDNS(host, at); !ok {
			return nil, false
		}
	}
	p, ok := e.http[httpKey(host, path)]
	if !ok || !inWindows(p.windows, at) {
		return nil, false
	}
	return p.component, true
}
