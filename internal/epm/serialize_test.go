package epm

import (
	"bytes"
	"strings"
	"testing"
)

func buildClustering(t *testing.T) *Clustering {
	t.Helper()
	s := testSchema()
	instances := mkInstances("a", 15, 4, 4, "mdA", "1000", "92")
	instances = append(instances, mkInstances("b", 15, 4, 4, "mdB", "2000", "80")...)
	for i := 0; i < 12; i++ {
		instances = append(instances, Instance{
			ID:       mkInstances("p", 1, 1, 1, "x", "y", "z")[0].ID + string(rune('0'+i%10)) + string(rune('a'+i)),
			Attacker: mkInstances("q", 1, 1, 1, "x", "y", "z")[0].Attacker,
			Sensor:   "s0",
			Values:   []string{"poly-" + string(rune('a'+i)), "3000", "92"},
		})
	}
	c, err := Run(s, instances, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestJSONRoundTrip(t *testing.T) {
	c := buildClustering(t)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Clusters) != len(c.Clusters) {
		t.Fatalf("clusters = %d, want %d", len(back.Clusters), len(c.Clusters))
	}
	// Assignments survive.
	for _, cl := range c.Clusters {
		for _, id := range cl.InstanceIDs {
			if back.ClusterOf(id) != c.ClusterOf(id) {
				t.Fatalf("assignment of %s differs", id)
			}
		}
	}
	// Invariants survive.
	if !back.IsInvariant("md5", "mdA") || back.IsInvariant("md5", "poly-a") {
		t.Error("invariants lost in round trip")
	}
	// Classification works on the restored clustering.
	_, idx, ok := back.Classify([]string{"mdA", "1000", "92"})
	if !ok || idx != c.ClusterOf("a-000") {
		t.Errorf("Classify after restore: idx=%d ok=%v", idx, ok)
	}
	// Total invariants identical.
	if back.TotalInvariants() != c.TotalInvariants() {
		t.Errorf("invariant totals differ: %d vs %d", back.TotalInvariants(), c.TotalInvariants())
	}
}

func TestReadJSONRejects(t *testing.T) {
	cases := map[string]string{
		"garbage":            "{nope",
		"bad schema":         `{"schema":{"Dimension":"","Features":[]},"thresholds":{"MinInstances":1,"MinAttackers":1,"MinSensors":1},"invariants":[],"clusters":[]}`,
		"bad thresholds":     `{"schema":{"Dimension":"m","Features":["a"]},"thresholds":{"MinInstances":0,"MinAttackers":1,"MinSensors":1},"invariants":[[]],"clusters":[]}`,
		"invariant mismatch": `{"schema":{"Dimension":"m","Features":["a","b"]},"thresholds":{"MinInstances":1,"MinAttackers":1,"MinSensors":1},"invariants":[[]],"clusters":[]}`,
		"pattern arity":      `{"schema":{"Dimension":"m","Features":["a"]},"thresholds":{"MinInstances":1,"MinAttackers":1,"MinSensors":1},"invariants":[[]],"clusters":[{"ID":0,"Pattern":{"Values":["x","y"]},"InstanceIDs":["i"]}]}`,
		"wrong id":           `{"schema":{"Dimension":"m","Features":["a"]},"thresholds":{"MinInstances":1,"MinAttackers":1,"MinSensors":1},"invariants":[[]],"clusters":[{"ID":3,"Pattern":{"Values":["x"]},"InstanceIDs":["i"]}]}`,
		"dup instance":       `{"schema":{"Dimension":"m","Features":["a"]},"thresholds":{"MinInstances":1,"MinAttackers":1,"MinSensors":1},"invariants":[[]],"clusters":[{"ID":0,"Pattern":{"Values":["x"]},"InstanceIDs":["i"]},{"ID":1,"Pattern":{"Values":["y"]},"InstanceIDs":["i"]}]}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(in)); err == nil {
				t.Error("ReadJSON accepted malformed input")
			}
		})
	}
}
