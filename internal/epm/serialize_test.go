package epm

import (
	"bytes"
	"strings"
	"testing"
)

func buildClustering(t *testing.T) *Clustering {
	t.Helper()
	s := testSchema()
	instances := mkInstances("a", 15, 4, 4, "mdA", "1000", "92")
	instances = append(instances, mkInstances("b", 15, 4, 4, "mdB", "2000", "80")...)
	for i := 0; i < 12; i++ {
		instances = append(instances, Instance{
			ID:       mkInstances("p", 1, 1, 1, "x", "y", "z")[0].ID + string(rune('0'+i%10)) + string(rune('a'+i)),
			Attacker: mkInstances("q", 1, 1, 1, "x", "y", "z")[0].Attacker,
			Sensor:   "s0",
			Values:   []string{"poly-" + string(rune('a'+i)), "3000", "92"},
		})
	}
	c, err := Run(s, instances, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestJSONRoundTrip(t *testing.T) {
	c := buildClustering(t)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Clusters) != len(c.Clusters) {
		t.Fatalf("clusters = %d, want %d", len(back.Clusters), len(c.Clusters))
	}
	// Assignments survive.
	for _, cl := range c.Clusters {
		for _, id := range cl.InstanceIDs {
			if back.ClusterOf(id) != c.ClusterOf(id) {
				t.Fatalf("assignment of %s differs", id)
			}
		}
	}
	// Invariants survive.
	if !back.IsInvariant("md5", "mdA") || back.IsInvariant("md5", "poly-a") {
		t.Error("invariants lost in round trip")
	}
	// Classification works on the restored clustering.
	_, idx, ok := back.Classify([]string{"mdA", "1000", "92"})
	if !ok || idx != c.ClusterOf("a-000") {
		t.Errorf("Classify after restore: idx=%d ok=%v", idx, ok)
	}
	// Total invariants identical.
	if back.TotalInvariants() != c.TotalInvariants() {
		t.Errorf("invariant totals differ: %d vs %d", back.TotalInvariants(), c.TotalInvariants())
	}
}

func TestReadJSONRejects(t *testing.T) {
	cases := map[string]string{
		"garbage":            "{nope",
		"bad schema":         `{"schema":{"Dimension":"","Features":[]},"thresholds":{"MinInstances":1,"MinAttackers":1,"MinSensors":1},"invariants":[],"clusters":[]}`,
		"bad thresholds":     `{"schema":{"Dimension":"m","Features":["a"]},"thresholds":{"MinInstances":0,"MinAttackers":1,"MinSensors":1},"invariants":[[]],"clusters":[]}`,
		"invariant mismatch": `{"schema":{"Dimension":"m","Features":["a","b"]},"thresholds":{"MinInstances":1,"MinAttackers":1,"MinSensors":1},"invariants":[[]],"clusters":[]}`,
		"pattern arity":      `{"schema":{"Dimension":"m","Features":["a"]},"thresholds":{"MinInstances":1,"MinAttackers":1,"MinSensors":1},"invariants":[[]],"clusters":[{"ID":0,"Pattern":{"Values":["x","y"]},"InstanceIDs":["i"]}]}`,
		"wrong id":           `{"schema":{"Dimension":"m","Features":["a"]},"thresholds":{"MinInstances":1,"MinAttackers":1,"MinSensors":1},"invariants":[[]],"clusters":[{"ID":3,"Pattern":{"Values":["x"]},"InstanceIDs":["i"]}]}`,
		"dup instance":       `{"schema":{"Dimension":"m","Features":["a"]},"thresholds":{"MinInstances":1,"MinAttackers":1,"MinSensors":1},"invariants":[[]],"clusters":[{"ID":0,"Pattern":{"Values":["x"]},"InstanceIDs":["i"]},{"ID":1,"Pattern":{"Values":["y"]},"InstanceIDs":["i"]}]}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(in)); err == nil {
				t.Error("ReadJSON accepted malformed input")
			}
		})
	}
}

// TestReadAllJSONTruncatedStream verifies a multi-clustering stream that
// breaks off mid-value fails with the clustering index and stream offset
// in the error, and that intact prefixes still load.
func TestReadAllJSONTruncatedStream(t *testing.T) {
	c := buildClustering(t)
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := c.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()

	all, err := ReadAllJSON(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("read %d clusterings, want 3", len(all))
	}

	// Cut inside the third value: the first two must have decoded, and
	// the error must name clustering 2 and a position inside the stream.
	cut := full[:len(full)-len(full)/4]
	if _, err := ReadAllJSON(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated stream must fail")
	} else {
		msg := err.Error()
		if !strings.Contains(msg, "clustering 2") {
			t.Errorf("error does not name the failing clustering: %v", err)
		}
		if !strings.Contains(msg, "stream offset") {
			t.Errorf("error does not carry the stream offset: %v", err)
		}
	}

	// A semantically invalid value mid-stream is located the same way.
	var mixed bytes.Buffer
	if err := c.WriteJSON(&mixed); err != nil {
		t.Fatal(err)
	}
	mixed.WriteString(`{"schema":{"Dimension":"m","Features":["a"]},"thresholds":{"MinInstances":0,"MinAttackers":1,"MinSensors":1},"invariants":[[]],"clusters":[]}`)
	if _, err := ReadAllJSON(&mixed); err == nil || !strings.Contains(err.Error(), "clustering 1") {
		t.Errorf("invalid second clustering not located: %v", err)
	}
}
