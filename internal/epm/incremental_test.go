package epm

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomStream builds a seeded instance stream whose feature values cross
// the relevance thresholds at staggered points, so a replay exercises
// both the delta path and the full-regroup fallback.
func randomStream(seed int64, n int) (Schema, []Instance) {
	schema := Schema{
		Dimension: "diff",
		Features:  []string{"f0", "f1", "f2", "f3"},
	}
	r := rand.New(rand.NewSource(seed))
	ins := make([]Instance, n)
	for i := range ins {
		vals := make([]string, len(schema.Features))
		for fi := range vals {
			// Small value pools with feature-dependent skew: common values
			// cross thresholds early, rare ones late or never.
			pool := 2 + fi*3
			v := r.Intn(pool)
			if r.Intn(10) == 0 {
				v = pool + r.Intn(50) // long-tail values that rarely recur
			}
			vals[fi] = fmt.Sprintf("f%d-v%d", fi, v)
		}
		ins[i] = Instance{
			// Random ID prefix forces mid-slice sorted inserts on the
			// delta path instead of pure appends.
			ID:       fmt.Sprintf("%02d-i%05d", r.Intn(100), i),
			Attacker: fmt.Sprintf("a%d", r.Intn(7)),
			Sensor:   fmt.Sprintf("s%d", r.Intn(5)),
			Values:   vals,
		}
	}
	return schema, ins
}

func marshalClustering(t *testing.T, c *Clustering) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIncrementalMatchesRunParallel is the tentpole differential gate:
// at every epoch boundary, the incremental engine's clustering must be
// byte-identical to RunParallel over the same prefix — clusters, stats,
// serialized bytes, instance lookup, and classification behavior.
func TestIncrementalMatchesRunParallel(t *testing.T) {
	const n = 700
	schema, ins := randomStream(42, n)
	th := DefaultThresholds()
	for _, epochSize := range []int{1, 7, 64, n} {
		t.Run(fmt.Sprintf("epoch=%d", epochSize), func(t *testing.T) {
			inc, err := NewIncremental(schema, th)
			if err != nil {
				t.Fatal(err)
			}
			sawDelta, sawFull := false, false
			for i, in := range ins {
				if err := inc.Add(in); err != nil {
					t.Fatal(err)
				}
				if inc.Pending() < epochSize && i != len(ins)-1 {
					continue
				}
				got, full := inc.Epoch()
				if full {
					sawFull = true
				} else {
					sawDelta = true
				}
				want, err := RunParallel(schema, ins[:i+1], th, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Clusters, want.Clusters) {
					t.Fatalf("epoch at %d: clusters diverge", i+1)
				}
				if !reflect.DeepEqual(got.Stats, want.Stats) {
					t.Fatalf("epoch at %d: stats diverge\n got %+v\nwant %+v", i+1, got.Stats, want.Stats)
				}
				if gb, wb := marshalClustering(t, got), marshalClustering(t, want); !bytes.Equal(gb, wb) {
					t.Fatalf("epoch at %d: serialized bytes diverge", i+1)
				}
				for _, in := range ins[:i+1] {
					if g, w := got.ClusterOf(in.ID), want.ClusterOf(in.ID); g != w {
						t.Fatalf("epoch at %d: ClusterOf(%q) = %d, want %d", i+1, in.ID, g, w)
					}
					gp, gi, gok := got.Classify(in.Values)
					wp, wi, wok := want.Classify(in.Values)
					if gok != wok || gi != wi || gp.Key() != wp.Key() {
						t.Fatalf("epoch at %d: Classify(%v) diverges", i+1, in.Values)
					}
				}
				if got.ClusterOf("absent") != -1 {
					t.Fatal("ClusterOf of unknown ID must be -1")
				}
				if g, w := got.TotalInvariants(), want.TotalInvariants(); g != w {
					t.Fatalf("epoch at %d: TotalInvariants %d != %d", i+1, g, w)
				}
			}
			if inc.Epochs() != inc.DeltaEpochs()+inc.FullRegroups() {
				t.Fatalf("epoch accounting: %d != %d + %d",
					inc.Epochs(), inc.DeltaEpochs(), inc.FullRegroups())
			}
			if !sawFull {
				t.Fatal("stream never exercised the full-regroup fallback")
			}
			if epochSize <= 64 && !sawDelta {
				t.Fatal("stream never exercised the delta path")
			}
			if epochSize == n && inc.FullRegroups() != inc.Epochs() {
				t.Fatal("single-epoch run must be a full regroup")
			}
		})
	}
}

// TestIncrementalMultipleSeeds widens the property over more streams at a
// coarser epoch size.
func TestIncrementalMultipleSeeds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		schema, ins := randomStream(seed, 300)
		th := DefaultThresholds()
		inc, err := NewIncremental(schema, th)
		if err != nil {
			t.Fatal(err)
		}
		for i, in := range ins {
			if err := inc.Add(in); err != nil {
				t.Fatal(err)
			}
			if inc.Pending() < 23 && i != len(ins)-1 {
				continue
			}
			got, _ := inc.Epoch()
			want, err := RunParallel(schema, ins[:i+1], th, 0)
			if err != nil {
				t.Fatal(err)
			}
			if gb, wb := marshalClustering(t, got), marshalClustering(t, want); !bytes.Equal(gb, wb) {
				t.Fatalf("seed %d, epoch at %d: serialized bytes diverge", seed, i+1)
			}
		}
	}
}

func TestIncrementalAddValidation(t *testing.T) {
	schema := Schema{Dimension: "d", Features: []string{"f0"}}
	inc, err := NewIncremental(schema, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	ok := Instance{ID: "a", Attacker: "x", Sensor: "y", Values: []string{"v"}}
	if err := inc.Add(ok); err != nil {
		t.Fatal(err)
	}
	bad := []Instance{
		{ID: "", Attacker: "x", Sensor: "y", Values: []string{"v"}},
		{ID: "a", Attacker: "x", Sensor: "y", Values: []string{"v"}}, // duplicate
		{ID: "b", Attacker: "", Sensor: "y", Values: []string{"v"}},
		{ID: "c", Attacker: "x", Sensor: "", Values: []string{"v"}},
		{ID: "d", Attacker: "x", Sensor: "y", Values: []string{"v", "w"}},
		{ID: "e", Attacker: "x", Sensor: "y", Values: []string{Wildcard}},
	}
	for i, in := range bad {
		if err := inc.Add(in); err == nil {
			t.Fatalf("bad instance %d accepted", i)
		}
	}
	if inc.Len() != 1 {
		t.Fatalf("Len = %d after rejections, want 1", inc.Len())
	}
	if inc.Clustering() != nil {
		t.Fatal("Clustering must be nil before the first epoch")
	}
	if _, err := NewIncremental(Schema{}, DefaultThresholds()); err == nil {
		t.Fatal("invalid schema must error")
	}
	if _, err := NewIncremental(schema, Thresholds{}); err == nil {
		t.Fatal("invalid thresholds must error")
	}
}

// TestIgroupInsert pins the sorted-insert helper on its three paths:
// empty, append, and mid-slice insert.
func TestIgroupInsert(t *testing.T) {
	g := &igroup{}
	for _, id := range []string{"m", "z", "a", "q", "b"} {
		g.insert(id)
	}
	want := []string{"a", "b", "m", "q", "z"}
	if !reflect.DeepEqual(g.ids, want) {
		t.Fatalf("ids = %v, want %v", g.ids, want)
	}
	if got := strings.Join(g.ids, ","); got != "a,b,m,q,z" {
		t.Fatalf("joined = %q", got)
	}
}
