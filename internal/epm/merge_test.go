package epm

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"
)

// mergeCorpus builds a corpus dense enough that invariant crossings and
// multi-member patterns occur at the test thresholds.
func mergeCorpus(n int, seed int64) []Instance {
	r := rand.New(rand.NewSource(seed))
	out := make([]Instance, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Instance{
			ID:       fmt.Sprintf("in-%04d", i),
			Attacker: fmt.Sprintf("atk-%d", r.Intn(6)),
			Sensor:   fmt.Sprintf("sn-%d", r.Intn(5)),
			Values: []string{
				fmt.Sprintf("a%d", r.Intn(3)),
				fmt.Sprintf("b%d", r.Intn(5)),
				fmt.Sprintf("c%d", r.Intn(9)),
			},
		})
	}
	return out
}

func mergeSchema() Schema {
	return Schema{Dimension: "epsilon", Features: []string{"fa", "fb", "fc"}}
}

// shardByID mimics the service router: stable hash of the instance ID.
func shardByID(id string, shards int) int {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int(h.Sum64() % uint64(shards))
}

// feedShards distributes the corpus over per-shard engines, running an
// epoch every epochEvery adds plus one final epoch on each engine.
func feedShards(t *testing.T, schema Schema, th Thresholds, corpus []Instance, shards, epochEvery int) []*Incremental {
	t.Helper()
	parts := make([]*Incremental, shards)
	for i := range parts {
		inc, err := NewIncremental(schema, th)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = inc
	}
	for i, in := range corpus {
		p := parts[shardByID(in.ID, shards)]
		if err := p.Add(in); err != nil {
			t.Fatal(err)
		}
		if epochEvery > 0 && i%epochEvery == epochEvery-1 {
			p.Epoch()
		}
	}
	for _, p := range parts {
		p.Epoch()
	}
	return parts
}

func compareMerged(t *testing.T, label string, got, want *Clustering) {
	t.Helper()
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Fatalf("%s: stats diverge:\ngot  %+v\nwant %+v", label, got.Stats, want.Stats)
	}
	if !reflect.DeepEqual(got.Clusters, want.Clusters) {
		t.Fatalf("%s: clusters diverge:\ngot  %+v\nwant %+v", label, got.Clusters, want.Clusters)
	}
	if !reflect.DeepEqual(got.invariants, want.invariants) {
		t.Fatalf("%s: invariant sets diverge", label)
	}
	for _, cl := range want.Clusters {
		for _, id := range cl.InstanceIDs {
			if gi := got.ClusterOf(id); gi != cl.ID {
				t.Fatalf("%s: ClusterOf(%s) = %d, want %d", label, id, gi, cl.ID)
			}
		}
	}
}

// TestMergeMatchesBatch is the differential gate: merging per-shard
// incremental engines is byte-identical to RunParallel over the union,
// for every shard count, epoch schedule, and arrival order.
func TestMergeMatchesBatch(t *testing.T) {
	schema := mergeSchema()
	th := Thresholds{MinInstances: 4, MinAttackers: 2, MinSensors: 2}
	for _, seed := range []int64{1, 7} {
		corpus := mergeCorpus(400, seed)
		batch, err := RunParallel(schema, corpus, th, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 3, 4, 8} {
			for _, epochEvery := range []int{0, 1, 37} {
				for _, order := range []string{"forward", "shuffled"} {
					in := corpus
					if order == "shuffled" {
						in = append([]Instance(nil), corpus...)
						rand.New(rand.NewSource(seed * 31)).Shuffle(len(in), func(a, b int) {
							in[a], in[b] = in[b], in[a]
						})
					}
					parts := feedShards(t, schema, th, in, shards, epochEvery)
					merged, err := Merge(parts)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("seed=%d shards=%d epoch=%d order=%s", seed, shards, epochEvery, order)
					compareMerged(t, label, merged, batch)
				}
			}
		}
	}
}

// TestMergeAggregateOnlyCrossing pins the case that breaks a
// pattern-table-only merge: a value that meets the relevance thresholds
// only in aggregate, so every shard recorded a wildcard where the merged
// clustering must split on the value.
func TestMergeAggregateOnlyCrossing(t *testing.T) {
	schema := mergeSchema()
	th := DefaultThresholds() // 10 instances, 3 attackers, 3 sensors
	var corpus []Instance
	// Twelve instances of value "hot" at feature fb: four per shard at
	// shards=3 — below MinInstances per shard, above it in aggregate.
	for i := 0; i < 12; i++ {
		corpus = append(corpus, Instance{
			ID:       fmt.Sprintf("hot-%02d", i),
			Attacker: fmt.Sprintf("atk-%d", i%4),
			Sensor:   fmt.Sprintf("sn-%d", i%4),
			Values:   []string{"a0", "hot", fmt.Sprintf("c%d", i%2)},
		})
	}
	// Background mass making "a0" invariant everywhere so patterns are
	// non-trivial on both sides of the split.
	for i := 0; i < 30; i++ {
		corpus = append(corpus, Instance{
			ID:       fmt.Sprintf("bg-%02d", i),
			Attacker: fmt.Sprintf("atk-%d", i%5),
			Sensor:   fmt.Sprintf("sn-%d", i%5),
			Values:   []string{"a0", fmt.Sprintf("cold-%d", i), "c9"},
		})
	}

	// Round-robin split keeps exactly four "hot" instances per shard.
	const shards = 3
	parts := make([]*Incremental, shards)
	for i := range parts {
		inc, err := NewIncremental(schema, th)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = inc
	}
	for i, in := range corpus {
		if err := parts[i%shards].Add(in); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range parts {
		p.Epoch()
		if p.invariants[1]["hot"] {
			t.Fatal("setup broken: value crossed thresholds inside a single shard")
		}
	}

	merged, err := Merge(parts)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.IsInvariant("fb", "hot") {
		t.Fatal("aggregate-only value did not become invariant in the merge")
	}
	batch, err := RunParallel(schema, corpus, th, 0)
	if err != nil {
		t.Fatal(err)
	}
	compareMerged(t, "aggregate-only crossing", merged, batch)
}

func TestMergeInputValidation(t *testing.T) {
	schema := mergeSchema()
	th := Thresholds{MinInstances: 4, MinAttackers: 2, MinSensors: 2}
	if _, err := Merge(nil); err == nil {
		t.Fatal("merge of zero parts did not fail")
	}

	a, _ := NewIncremental(schema, th)
	b, _ := NewIncremental(schema, Thresholds{MinInstances: 5, MinAttackers: 2, MinSensors: 2})
	if _, err := Merge([]*Incremental{a, b}); err == nil {
		t.Fatal("mismatched thresholds did not fail")
	}

	other, _ := NewIncremental(Schema{Dimension: "pi", Features: []string{"fa", "fb", "fc"}}, th)
	if _, err := Merge([]*Incremental{a, other}); err == nil {
		t.Fatal("mismatched schemas did not fail")
	}

	dupA, _ := NewIncremental(schema, th)
	dupB, _ := NewIncremental(schema, th)
	in := Instance{ID: "dup", Attacker: "atk", Sensor: "sn", Values: []string{"a", "b", "c"}}
	if err := dupA.Add(in); err != nil {
		t.Fatal(err)
	}
	if err := dupB.Add(in); err != nil {
		t.Fatal(err)
	}
	dupA.Epoch()
	dupB.Epoch()
	if _, err := Merge([]*Incremental{dupA, dupB}); err == nil {
		t.Fatal("duplicate instance ID across parts did not fail")
	}
}
