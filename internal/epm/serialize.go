package epm

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// clusteringJSON is the wire form of a Clustering.
type clusteringJSON struct {
	Schema     Schema        `json:"schema"`
	Thresholds Thresholds    `json:"thresholds"`
	Stats      []FeatureStat `json:"stats"`
	Invariants [][]string    `json:"invariants"`
	Clusters   []Cluster     `json:"clusters"`
}

// WriteJSON serializes the clustering, including discovered invariants and
// full cluster membership, so a stored run can be reloaded and used for
// classification without the original instances.
func (c *Clustering) WriteJSON(w io.Writer) error {
	out := clusteringJSON{
		Schema:     c.Schema,
		Thresholds: c.Thresholds,
		Stats:      c.Stats,
		Clusters:   c.Clusters,
		Invariants: make([][]string, len(c.invariants)),
	}
	for i, inv := range c.invariants {
		vals := make([]string, 0, len(inv))
		for v := range inv {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		out.Invariants[i] = vals
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON reconstructs a Clustering written by WriteJSON. The result
// supports every read accessor (ClusterOf, Classify, IsInvariant, ...).
// To read several clusterings from one stream, use ReadAllJSON: a
// json.Decoder buffers past the first value, so repeated ReadJSON calls
// on the same reader would lose data.
func ReadJSON(r io.Reader) (*Clustering, error) {
	return decodeClustering(json.NewDecoder(r))
}

// ReadAllJSON reads every clustering from a stream of WriteJSON outputs.
// A decode failure is wrapped with the index of the clustering being read
// and the byte offset the decoder had reached, so a truncated or corrupt
// multi-clustering file points at the damage instead of a bare JSON
// error.
func ReadAllJSON(r io.Reader) ([]*Clustering, error) {
	dec := json.NewDecoder(r)
	var out []*Clustering
	for dec.More() {
		c, err := decodeClustering(dec)
		if err != nil {
			return nil, fmt.Errorf("epm: clustering %d (stream offset %d): %w",
				len(out), dec.InputOffset(), err)
		}
		out = append(out, c)
	}
	return out, nil
}

func decodeClustering(dec *json.Decoder) (*Clustering, error) {
	var in clusteringJSON
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("epm: decoding clustering: %w", err)
	}
	if err := in.Schema.Validate(); err != nil {
		return nil, err
	}
	if err := in.Thresholds.Validate(); err != nil {
		return nil, err
	}
	if len(in.Invariants) != len(in.Schema.Features) {
		return nil, fmt.Errorf("epm: %d invariant sets for %d features",
			len(in.Invariants), len(in.Schema.Features))
	}
	c := &Clustering{
		Schema:     in.Schema,
		Thresholds: in.Thresholds,
		Stats:      in.Stats,
		Clusters:   in.Clusters,
		invariants: make([]map[string]bool, len(in.Invariants)),
		byInstance: make(map[string]int),
		byPattern:  make(map[string]int),
	}
	for i, vals := range in.Invariants {
		c.invariants[i] = make(map[string]bool, len(vals))
		for _, v := range vals {
			c.invariants[i][v] = true
		}
	}
	for i, cl := range c.Clusters {
		if len(cl.Pattern.Values) != len(in.Schema.Features) {
			return nil, fmt.Errorf("epm: cluster %d pattern arity %d, want %d",
				i, len(cl.Pattern.Values), len(in.Schema.Features))
		}
		if cl.ID != i {
			return nil, fmt.Errorf("epm: cluster %d carries ID %d", i, cl.ID)
		}
		if _, dup := c.byPattern[cl.Pattern.Key()]; dup {
			return nil, fmt.Errorf("epm: duplicate pattern %s", cl.Pattern)
		}
		c.byPattern[cl.Pattern.Key()] = i
		for _, id := range cl.InstanceIDs {
			if _, dup := c.byInstance[id]; dup {
				return nil, fmt.Errorf("epm: instance %q in multiple clusters", id)
			}
			c.byInstance[id] = i
		}
	}
	return c, nil
}
