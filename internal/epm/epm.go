// Package epm implements EPM clustering, the paper's primary
// contribution: a deliberately simple pattern-discovery technique (a
// simplification of Julisch's attribute-oriented induction for IDS
// alerts) applied independently to the Exploit (ε), Payload (π), and
// Malware (μ) dimensions of code-injection attacks.
//
// The technique has four phases:
//
//  1. Feature definition — a schema of per-dimension features (Table 1).
//  2. Invariant discovery — a feature value is an invariant when it is
//     witnessed in enough attack instances, used by enough distinct
//     attackers, and observed by enough distinct honeypot addresses; the
//     thresholds used throughout the paper are (10, 3, 3).
//  3. Pattern discovery — the distinct combinations of invariant values
//     (with "do not care" wildcards for non-invariant positions) observed
//     in the dataset.
//  4. Pattern-based classification — every instance is assigned to the
//     most specific pattern matching its feature values; the instances of
//     one pattern form one cluster (E-, P-, or M-cluster depending on the
//     dimension).
//
// The approach assumes attacker randomization has limited scope: mutating
// every feature has a cost, so enough invariants survive to characterize
// each activity class. The paper shows this holds for the sophistication
// level of contemporary polymorphic engines.
package epm

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Wildcard is the "do not care" value in patterns.
const Wildcard = "*"

// Schema names the features of one EPM dimension, in column order.
type Schema struct {
	// Dimension is a label such as "epsilon", "pi", or "mu".
	Dimension string
	// Features are the feature (column) names.
	Features []string
}

// Validate checks the schema.
func (s Schema) Validate() error {
	if s.Dimension == "" {
		return fmt.Errorf("epm: schema needs a dimension label")
	}
	if len(s.Features) == 0 {
		return fmt.Errorf("epm: schema %q has no features", s.Dimension)
	}
	seen := make(map[string]bool, len(s.Features))
	for _, f := range s.Features {
		if f == "" {
			return fmt.Errorf("epm: schema %q has an empty feature name", s.Dimension)
		}
		if seen[f] {
			return fmt.Errorf("epm: schema %q repeats feature %q", s.Dimension, f)
		}
		seen[f] = true
	}
	return nil
}

// Instance is one attack instance projected onto one dimension.
type Instance struct {
	// ID identifies the attack event.
	ID string
	// Attacker identifies the attacking source (an IP address in the real
	// dataset); it feeds the "used by at least N attackers" relevance
	// constraint.
	Attacker string
	// Sensor identifies the honeypot address that observed the instance;
	// it feeds the "witnessed on at least N honeypot IPs" constraint.
	Sensor string
	// Values are the feature values, aligned with the schema columns.
	Values []string
}

// Thresholds configure invariant discovery.
type Thresholds struct {
	// MinInstances is the minimum number of attack instances a value must
	// appear in.
	MinInstances int
	// MinAttackers is the minimum number of distinct attackers that must
	// have used the value.
	MinAttackers int
	// MinSensors is the minimum number of distinct honeypot addresses that
	// must have witnessed the value.
	MinSensors int
}

// DefaultThresholds are the values used throughout the paper: an invariant
// must be seen in at least 10 attack instances, from at least 3 attackers,
// on at least 3 honeypot IPs.
func DefaultThresholds() Thresholds {
	return Thresholds{MinInstances: 10, MinAttackers: 3, MinSensors: 3}
}

// Validate checks the thresholds.
func (t Thresholds) Validate() error {
	if t.MinInstances < 1 || t.MinAttackers < 1 || t.MinSensors < 1 {
		return fmt.Errorf("epm: thresholds must be >= 1, got %+v", t)
	}
	return nil
}

// Pattern is a tuple of invariant values and wildcards.
type Pattern struct {
	Values []string
}

// Specificity counts the non-wildcard positions.
func (p Pattern) Specificity() int {
	n := 0
	for _, v := range p.Values {
		if v != Wildcard {
			n++
		}
	}
	return n
}

// Matches reports whether the pattern matches the given feature values.
func (p Pattern) Matches(values []string) bool {
	if len(values) != len(p.Values) {
		return false
	}
	for i, v := range p.Values {
		if v != Wildcard && v != values[i] {
			return false
		}
	}
	return true
}

// Key renders the pattern as a stable string.
func (p Pattern) Key() string {
	return strings.Join(p.Values, "\x1f")
}

// String renders the pattern for human consumption.
func (p Pattern) String() string {
	return "(" + strings.Join(p.Values, ", ") + ")"
}

// Cluster groups the instances classified under one pattern.
type Cluster struct {
	// ID is a dense index assigned largest-cluster-first within the
	// clustering.
	ID int
	// Pattern is the classification pattern of the cluster.
	Pattern Pattern
	// InstanceIDs lists the member attack instances, sorted.
	InstanceIDs []string
	// Attackers is the number of distinct attackers among members.
	Attackers int
	// Sensors is the number of distinct sensors among members.
	Sensors int
}

// Size returns the number of member instances.
func (c Cluster) Size() int { return len(c.InstanceIDs) }

// FeatureStat describes invariant discovery for one feature.
type FeatureStat struct {
	// Feature is the feature name.
	Feature string
	// Invariants is the number of invariant values discovered (the
	// rightmost column of Table 1).
	Invariants int
	// DistinctValues is the number of distinct values observed.
	DistinctValues int
}

// Clustering is the result of running EPM on one dimension.
type Clustering struct {
	Schema     Schema
	Thresholds Thresholds
	// Stats has one entry per schema feature, in order.
	Stats []FeatureStat
	// Clusters are the discovered clusters, largest first.
	Clusters []Cluster
	// invariants[i] is the set of invariant values of feature i.
	invariants []map[string]bool
	byInstance map[string]int
	byPattern  map[string]int
	// lookup, when set, answers ClusterOf instead of byInstance. The
	// incremental engine installs its membership index here so that
	// materializing an epoch never pays an O(instances) map rebuild.
	lookup func(instanceID string) int
}

// ClusterOf returns the cluster index of an instance ID, or -1.
func (c *Clustering) ClusterOf(instanceID string) int {
	if c.byInstance != nil {
		if i, ok := c.byInstance[instanceID]; ok {
			return i
		}
		return -1
	}
	if c.lookup != nil {
		return c.lookup(instanceID)
	}
	return -1
}

// ClusterByPattern returns the cluster index for a pattern key, or -1.
func (c *Clustering) ClusterByPattern(p Pattern) int {
	if i, ok := c.byPattern[p.Key()]; ok {
		return i
	}
	return -1
}

// IsInvariant reports whether value is an invariant of the named feature.
func (c *Clustering) IsInvariant(feature, value string) bool {
	for i, f := range c.Schema.Features {
		if f == feature {
			return c.invariants[i][value]
		}
	}
	return false
}

// Classify returns the most specific pattern of the clustering matching
// the given values and its cluster index. Ties on specificity are broken
// by pattern key for determinism. ok=false means no pattern matches.
// Wildcard is reserved for patterns: values containing "*" never classify.
//
// The common case is O(features): generalizing the values (keep invariant
// values, wildcard the rest) yields the most specific pattern that could
// match them — every discovered pattern carries only invariant values at
// its non-wildcard positions, so any pattern matching the values is a
// pointwise generalization of the generalized tuple. A byPattern hit is
// therefore the unique most-specific match; only a miss falls back to the
// linear scan over less specific patterns.
func (c *Clustering) Classify(values []string) (Pattern, int, bool) {
	if len(values) != len(c.Schema.Features) {
		return Pattern{}, -1, false
	}
	for _, v := range values {
		if v == Wildcard {
			return Pattern{}, -1, false
		}
	}
	if i, ok := c.byPattern[c.generalizedKey(values)]; ok {
		return c.Clusters[i].Pattern, i, true
	}
	return c.classifyScan(values)
}

// classifyScan is the exhaustive most-specific-match over all clusters,
// the reference the fast path falls back to (and is tested against).
func (c *Clustering) classifyScan(values []string) (Pattern, int, bool) {
	best := -1
	for i, cl := range c.Clusters {
		if !cl.Pattern.Matches(values) {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		bs, cs := c.Clusters[best].Pattern.Specificity(), cl.Pattern.Specificity()
		if cs > bs || (cs == bs && cl.Pattern.Key() < c.Clusters[best].Pattern.Key()) {
			best = i
		}
	}
	if best < 0 {
		return Pattern{}, -1, false
	}
	return c.Clusters[best].Pattern, best, true
}

// generalize keeps the invariant values and wildcards the rest.
func (c *Clustering) generalize(values []string) Pattern {
	return generalizeWith(values, c.invariants)
}

// generalizedKey is generalize(values).Key() in a single allocation, for
// the classification hot path.
func (c *Clustering) generalizedKey(values []string) string {
	return generalizedKeyWith(values, c.invariants)
}

// generalizeWith keeps the values that are invariants of their feature
// and wildcards the rest.
func generalizeWith(values []string, invariants []map[string]bool) Pattern {
	vals := make([]string, len(values))
	for fi, v := range values {
		if invariants[fi][v] {
			vals[fi] = v
		} else {
			vals[fi] = Wildcard
		}
	}
	return Pattern{Values: vals}
}

// generalizedKeyWith is generalizeWith(values, invariants).Key() in a
// single allocation.
func generalizedKeyWith(values []string, invariants []map[string]bool) string {
	n := len(values)
	for _, v := range values {
		n += len(v)
	}
	var b strings.Builder
	b.Grow(n)
	for fi, v := range values {
		if fi > 0 {
			b.WriteByte('\x1f')
		}
		if invariants[fi][v] {
			b.WriteString(v)
		} else {
			b.WriteString(Wildcard)
		}
	}
	return b.String()
}

// Run executes invariant discovery, pattern discovery, and classification
// over the instances, using one worker per available CPU. Use RunParallel
// to pin the worker count; the result is identical at any level.
func Run(schema Schema, instances []Instance, th Thresholds) (*Clustering, error) {
	return RunParallel(schema, instances, th, 0)
}

// RunParallel is Run with an explicit bound on worker goroutines; workers
// <= 0 selects GOMAXPROCS. The clustering is byte-identical regardless of
// the worker count: Phase-2 results are index-addressed per feature, and
// Phase-3 shard merging feeds a total ordering (size, then pattern key).
func RunParallel(schema Schema, instances []Instance, th Thresholds, workers int) (*Clustering, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if err := th.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	seenID := make(map[string]bool, len(instances))
	for _, in := range instances {
		if in.ID == "" {
			return nil, fmt.Errorf("epm: instance with empty ID")
		}
		if seenID[in.ID] {
			return nil, fmt.Errorf("epm: duplicate instance ID %q", in.ID)
		}
		seenID[in.ID] = true
		if in.Attacker == "" {
			return nil, fmt.Errorf("epm: instance %q has an empty attacker", in.ID)
		}
		if in.Sensor == "" {
			return nil, fmt.Errorf("epm: instance %q has an empty sensor", in.ID)
		}
		if len(in.Values) != len(schema.Features) {
			return nil, fmt.Errorf("epm: instance %q has %d values for %d features",
				in.ID, len(in.Values), len(schema.Features))
		}
		for _, v := range in.Values {
			if v == Wildcard {
				return nil, fmt.Errorf("epm: instance %q uses reserved value %q", in.ID, Wildcard)
			}
		}
	}

	c := &Clustering{
		Schema:     schema,
		Thresholds: th,
		Stats:      make([]FeatureStat, len(schema.Features)),
		invariants: make([]map[string]bool, len(schema.Features)),
		byInstance: make(map[string]int, len(instances)),
		byPattern:  make(map[string]int),
	}

	// Phase 2: invariant discovery. Each feature's value statistics are
	// independent, so features fan out across the pool; invariants[fi] and
	// Stats[fi] are index-addressed, so there are no ordering races.
	var wg sync.WaitGroup
	feats := make(chan int)
	for w := 0; w < min(workers, len(schema.Features)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for fi := range feats {
				c.discoverFeature(fi, instances, th)
			}
		}()
	}
	for fi := range schema.Features {
		feats <- fi
	}
	close(feats)
	wg.Wait()

	// Phase 3 + 4: pattern discovery and classification. Generalizing each
	// instance (keep invariant values, wildcard the rest) yields exactly
	// the observed invariant combinations; the generalized tuple of an
	// instance is also the most specific discovered pattern matching it,
	// so discovery and most-specific classification coincide (property
	// covered by tests). Grouping is sharded over contiguous instance
	// ranges; the merge below is order-insensitive because member IDs are
	// sorted per group and the cluster ordering is total.
	shardSize := (len(instances) + workers - 1) / workers
	var shards []map[string]*group
	var gw sync.WaitGroup
	for lo := 0; lo < len(instances); lo += shardSize {
		m := make(map[string]*group)
		shards = append(shards, m)
		gw.Add(1)
		go func(part []Instance, m map[string]*group) {
			defer gw.Done()
			for _, in := range part {
				p := c.generalize(in.Values)
				key := p.Key()
				g, ok := m[key]
				if !ok {
					g = &group{pattern: p, attackers: make(map[string]bool), sensors: make(map[string]bool)}
					m[key] = g
				}
				g.ids = append(g.ids, in.ID)
				g.attackers[in.Attacker] = true
				g.sensors[in.Sensor] = true
			}
		}(instances[lo:min(lo+shardSize, len(instances))], m)
	}
	gw.Wait()

	groups := make(map[string]*group)
	for _, m := range shards {
		for key, g := range m {
			dst, ok := groups[key]
			if !ok {
				groups[key] = g
				continue
			}
			dst.ids = append(dst.ids, g.ids...)
			for a := range g.attackers {
				dst.attackers[a] = true
			}
			for s := range g.sensors {
				dst.sensors[s] = true
			}
		}
	}

	c.Clusters = make([]Cluster, 0, len(groups))
	for _, g := range groups {
		sort.Strings(g.ids)
		c.Clusters = append(c.Clusters, Cluster{
			Pattern:     g.pattern,
			InstanceIDs: g.ids,
			Attackers:   len(g.attackers),
			Sensors:     len(g.sensors),
		})
	}
	sort.Slice(c.Clusters, func(a, b int) bool {
		if len(c.Clusters[a].InstanceIDs) != len(c.Clusters[b].InstanceIDs) {
			return len(c.Clusters[a].InstanceIDs) > len(c.Clusters[b].InstanceIDs)
		}
		return c.Clusters[a].Pattern.Key() < c.Clusters[b].Pattern.Key()
	})
	for i := range c.Clusters {
		c.Clusters[i].ID = i
		c.byPattern[c.Clusters[i].Pattern.Key()] = i
		for _, id := range c.Clusters[i].InstanceIDs {
			c.byInstance[id] = i
		}
	}
	return c, nil
}

// valueStat accumulates the Phase-2 relevance statistics of one value.
type valueStat struct {
	instances int
	attackers map[string]bool
	sensors   map[string]bool
}

// group accumulates the members of one generalized pattern during Phase 3.
type group struct {
	pattern   Pattern
	ids       []string
	attackers map[string]bool
	sensors   map[string]bool
}

// discoverFeature runs Phase-2 invariant discovery for feature fi.
func (c *Clustering) discoverFeature(fi int, instances []Instance, th Thresholds) {
	stats := make(map[string]*valueStat)
	for _, in := range instances {
		v := in.Values[fi]
		vs, ok := stats[v]
		if !ok {
			vs = &valueStat{attackers: make(map[string]bool), sensors: make(map[string]bool)}
			stats[v] = vs
		}
		vs.instances++
		vs.attackers[in.Attacker] = true
		vs.sensors[in.Sensor] = true
	}
	inv := make(map[string]bool)
	for v, vs := range stats {
		if vs.instances >= th.MinInstances &&
			len(vs.attackers) >= th.MinAttackers &&
			len(vs.sensors) >= th.MinSensors {
			inv[v] = true
		}
	}
	c.invariants[fi] = inv
	c.Stats[fi] = FeatureStat{
		Feature:        c.Schema.Features[fi],
		Invariants:     len(inv),
		DistinctValues: len(stats),
	}
}

// TotalInvariants sums the invariant counts over all features (the
// per-dimension totals reported in Table 1).
func (c *Clustering) TotalInvariants() int {
	n := 0
	for _, s := range c.Stats {
		n += s.Invariants
	}
	return n
}
