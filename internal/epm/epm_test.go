package epm

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/simrng"
)

func testSchema() Schema {
	return Schema{Dimension: "mu", Features: []string{"md5", "size", "linker"}}
}

// mkInstances builds n instances with the given fixed values, cycling
// through na attackers and ns sensors.
func mkInstances(prefix string, n, na, ns int, values ...string) []Instance {
	out := make([]Instance, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Instance{
			ID:       fmt.Sprintf("%s-%03d", prefix, i),
			Attacker: fmt.Sprintf("a%d", i%na),
			Sensor:   fmt.Sprintf("s%d", i%ns),
			Values:   values,
		})
	}
	return out
}

func TestSchemaValidate(t *testing.T) {
	tests := []struct {
		name    string
		schema  Schema
		wantErr bool
	}{
		{"valid", testSchema(), false},
		{"no dimension", Schema{Features: []string{"a"}}, true},
		{"no features", Schema{Dimension: "mu"}, true},
		{"empty feature", Schema{Dimension: "mu", Features: []string{""}}, true},
		{"duplicate feature", Schema{Dimension: "mu", Features: []string{"a", "a"}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.schema.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestThresholdsValidate(t *testing.T) {
	if err := DefaultThresholds().Validate(); err != nil {
		t.Error(err)
	}
	if err := (Thresholds{0, 1, 1}).Validate(); err == nil {
		t.Error("zero MinInstances must error")
	}
}

func TestRunInputValidation(t *testing.T) {
	s := testSchema()
	th := DefaultThresholds()
	if _, err := Run(s, []Instance{{ID: "", Values: []string{"a", "b", "c"}}}, th); err == nil {
		t.Error("empty ID must error")
	}
	if _, err := Run(s, []Instance{
		{ID: "x", Attacker: "a", Sensor: "s", Values: []string{"a", "b", "c"}},
		{ID: "x", Attacker: "a", Sensor: "s", Values: []string{"a", "b", "c"}},
	}, th); err == nil {
		t.Error("duplicate ID must error")
	}
	if _, err := Run(s, []Instance{{ID: "x", Attacker: "a", Sensor: "s", Values: []string{"a"}}}, th); err == nil {
		t.Error("value arity mismatch must error")
	}
	if _, err := Run(s, []Instance{{ID: "x", Attacker: "a", Sensor: "s", Values: []string{"a", "*", "c"}}}, th); err == nil {
		t.Error("reserved wildcard value must error")
	}
	if _, err := Run(s, []Instance{{ID: "x", Sensor: "s", Values: []string{"a", "b", "c"}}}, th); err == nil {
		t.Error("empty attacker must error")
	}
	if _, err := Run(s, []Instance{{ID: "x", Attacker: "a", Values: []string{"a", "b", "c"}}}, th); err == nil {
		t.Error("empty sensor must error")
	}
	if _, err := Run(Schema{}, nil, th); err == nil {
		t.Error("invalid schema must error")
	}
	if _, err := Run(s, nil, Thresholds{}); err == nil {
		t.Error("invalid thresholds must error")
	}
}

func TestInvariantDiscoveryThresholds(t *testing.T) {
	s := testSchema()
	th := DefaultThresholds() // 10 instances, 3 attackers, 3 sensors

	// Group A: 20 instances, 5 attackers, 5 sensors -> all values invariant.
	instances := mkInstances("a", 20, 5, 5, "md5A", "59904", "92")
	// Group B: only 5 instances -> fails MinInstances.
	instances = append(instances, mkInstances("b", 5, 5, 5, "md5B", "1111", "80")...)
	// Group C: 20 instances but a single attacker -> fails MinAttackers.
	instances = append(instances, mkInstances("c", 20, 1, 5, "md5C", "2222", "71")...)
	// Group D: 20 instances but a single sensor -> fails MinSensors.
	instances = append(instances, mkInstances("d", 20, 5, 1, "md5D", "3333", "60")...)

	c, err := Run(s, instances, th)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsInvariant("md5", "md5A") {
		t.Error("md5A must be invariant")
	}
	for _, v := range []string{"md5B", "md5C", "md5D"} {
		if c.IsInvariant("md5", v) {
			t.Errorf("%s must not be invariant", v)
		}
	}
	if got := c.Stats[0].Invariants; got != 1 {
		t.Errorf("md5 invariants = %d, want 1", got)
	}
	if got := c.Stats[0].DistinctValues; got != 4 {
		t.Errorf("md5 distinct = %d, want 4", got)
	}
}

func TestPolymorphicMD5BecomesWildcard(t *testing.T) {
	// Allaple-style: every instance has a unique MD5 but shared size and
	// linker. The resulting cluster pattern must be (*, size, linker).
	s := testSchema()
	var instances []Instance
	for i := 0; i < 30; i++ {
		instances = append(instances, Instance{
			ID:       fmt.Sprintf("ev-%03d", i),
			Attacker: fmt.Sprintf("a%d", i%7),
			Sensor:   fmt.Sprintf("s%d", i%5),
			Values:   []string{fmt.Sprintf("unique-md5-%d", i), "59904", "92"},
		})
	}
	c, err := Run(s, instances, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(c.Clusters))
	}
	got := c.Clusters[0].Pattern
	if got.Values[0] != Wildcard || got.Values[1] != "59904" || got.Values[2] != "92" {
		t.Errorf("pattern = %v", got)
	}
	if got.Specificity() != 2 {
		t.Errorf("specificity = %d", got.Specificity())
	}
	if c.Clusters[0].Attackers != 7 || c.Clusters[0].Sensors != 5 {
		t.Errorf("cluster context counts = %d attackers, %d sensors", c.Clusters[0].Attackers, c.Clusters[0].Sensors)
	}
}

func TestPerSourcePolymorphismNotInvariant(t *testing.T) {
	// M-cluster-13 style: the same MD5 repeats across instances and
	// sensors, but always from ONE attacker; the 3-attacker constraint
	// must reject it even though it passes the instance count.
	s := testSchema()
	var instances []Instance
	for src := 0; src < 4; src++ {
		for i := 0; i < 12; i++ {
			instances = append(instances, Instance{
				ID:       fmt.Sprintf("ev-%d-%02d", src, i),
				Attacker: fmt.Sprintf("attacker-%d", src),
				Sensor:   fmt.Sprintf("s%d", i%6),
				Values:   []string{fmt.Sprintf("md5-of-src-%d", src), "59904", "92"},
			})
		}
	}
	c, err := Run(s, instances, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats[0].Invariants; got != 0 {
		t.Errorf("per-source MD5s: invariants = %d, want 0", got)
	}
	// All events collapse into one cluster on (␣, size, linker).
	if len(c.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(c.Clusters))
	}
	if c.Clusters[0].Pattern.Values[0] != Wildcard {
		t.Errorf("pattern = %v", c.Clusters[0].Pattern)
	}
}

func TestDistinctPatternsSeparateClusters(t *testing.T) {
	s := testSchema()
	instances := mkInstances("a", 15, 4, 4, "mdA", "1000", "92")
	instances = append(instances, mkInstances("b", 15, 4, 4, "mdB", "2000", "92")...)
	instances = append(instances, mkInstances("c", 15, 4, 4, "mdC", "2000", "80")...)
	c, err := Run(s, instances, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Clusters) != 3 {
		t.Fatalf("clusters = %d, want 3", len(c.Clusters))
	}
	// Every instance of a group must be in the same cluster.
	for _, grp := range []string{"a", "b", "c"} {
		want := c.ClusterOf(grp + "-000")
		for i := 0; i < 15; i++ {
			if got := c.ClusterOf(fmt.Sprintf("%s-%03d", grp, i)); got != want {
				t.Errorf("instance %s-%03d in cluster %d, want %d", grp, i, got, want)
			}
		}
	}
}

func TestMostSpecificClassification(t *testing.T) {
	// Two patterns coexist: a fully-specific one and a generalization.
	// Instances matching both must be assigned to the most specific one.
	s := testSchema()
	// 20 instances of the exact tuple (mdX, 500, 92): md5 invariant.
	instances := mkInstances("exact", 20, 5, 5, "mdX", "500", "92")
	// 20 instances with unique md5s but same size/linker: yields (*, 500, 92).
	for i := 0; i < 20; i++ {
		instances = append(instances, Instance{
			ID:       fmt.Sprintf("poly-%03d", i),
			Attacker: fmt.Sprintf("a%d", i%5),
			Sensor:   fmt.Sprintf("s%d", i%5),
			Values:   []string{fmt.Sprintf("u%d", i), "500", "92"},
		})
	}
	c, err := Run(s, instances, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(c.Clusters))
	}
	exactCluster := c.ClusterOf("exact-000")
	polyCluster := c.ClusterOf("poly-000")
	if exactCluster == polyCluster {
		t.Fatal("exact and polymorphic instances must separate")
	}
	if got := c.Clusters[exactCluster].Pattern.Specificity(); got != 3 {
		t.Errorf("exact pattern specificity = %d, want 3", got)
	}
	// Classify must agree with assignment: the exact tuple matches both
	// patterns but must return the specific one.
	p, idx, ok := c.Classify([]string{"mdX", "500", "92"})
	if !ok || idx != exactCluster {
		t.Errorf("Classify = %v %d %v, want cluster %d", p, idx, ok, exactCluster)
	}
	// A fresh polymorphic instance matches only the generalization.
	_, idx, ok = c.Classify([]string{"never-seen", "500", "92"})
	if !ok || idx != polyCluster {
		t.Errorf("Classify(fresh poly) = cluster %d, want %d", idx, polyCluster)
	}
	// A totally unknown tuple matches nothing.
	if _, _, ok := c.Classify([]string{"x", "999", "1"}); ok {
		t.Error("unknown tuple must not classify")
	}
}

func TestClassifyAgreesWithAssignment(t *testing.T) {
	// Property: for every input instance, Classify(values) returns the
	// cluster the instance was assigned to.
	s := testSchema()
	r := simrng.New(3).Stream("epm")
	var instances []Instance
	md5s := []string{"m1", "m2", "m3", "rare1", "rare2"}
	sizes := []string{"100", "200", "300"}
	linkers := []string{"71", "92"}
	for i := 0; i < 300; i++ {
		instances = append(instances, Instance{
			ID:       fmt.Sprintf("ev%03d", i),
			Attacker: fmt.Sprintf("a%d", r.Intn(8)),
			Sensor:   fmt.Sprintf("s%d", r.Intn(6)),
			Values: []string{
				md5s[r.Intn(len(md5s))],
				sizes[r.Intn(len(sizes))],
				linkers[r.Intn(len(linkers))],
			},
		})
	}
	c, err := Run(s, instances, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range instances {
		_, idx, ok := c.Classify(in.Values)
		if !ok {
			t.Fatalf("instance %s does not classify", in.ID)
		}
		if got := c.ClusterOf(in.ID); got != idx {
			t.Fatalf("instance %s assigned to %d but Classify returns %d", in.ID, got, idx)
		}
	}
}

func TestClusterSizesSumToInstances(t *testing.T) {
	s := testSchema()
	r := simrng.New(4).Stream("epm2")
	var instances []Instance
	for i := 0; i < 500; i++ {
		instances = append(instances, Instance{
			ID:       fmt.Sprintf("ev%03d", i),
			Attacker: fmt.Sprintf("a%d", r.Intn(10)),
			Sensor:   fmt.Sprintf("s%d", r.Intn(10)),
			Values:   []string{fmt.Sprintf("m%d", r.Intn(20)), fmt.Sprintf("%d", 100*r.Intn(5)), "92"},
		})
	}
	c, err := Run(s, instances, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, cl := range c.Clusters {
		total += cl.Size()
	}
	if total != len(instances) {
		t.Errorf("cluster sizes sum to %d, want %d", total, len(instances))
	}
	// Clusters are sorted largest-first with dense IDs.
	for i := 1; i < len(c.Clusters); i++ {
		if c.Clusters[i].Size() > c.Clusters[i-1].Size() {
			t.Error("clusters not sorted by size")
		}
		if c.Clusters[i].ID != i {
			t.Error("cluster IDs not dense")
		}
	}
}

func TestPatternHelpers(t *testing.T) {
	p := Pattern{Values: []string{"a", Wildcard, "c"}}
	if p.Specificity() != 2 {
		t.Errorf("Specificity = %d", p.Specificity())
	}
	if !p.Matches([]string{"a", "anything", "c"}) {
		t.Error("wildcard position must match anything")
	}
	if p.Matches([]string{"a", "b"}) {
		t.Error("arity mismatch must not match")
	}
	if p.Matches([]string{"x", "b", "c"}) {
		t.Error("fixed mismatch must not match")
	}
	if p.String() != "(a, *, c)" {
		t.Errorf("String = %q", p.String())
	}
}

func TestTotalInvariants(t *testing.T) {
	s := testSchema()
	instances := mkInstances("a", 15, 4, 4, "mdA", "1000", "92")
	instances = append(instances, mkInstances("b", 15, 4, 4, "mdB", "2000", "92")...)
	c, err := Run(s, instances, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	// md5: 2 invariants; size: 2; linker: 1 => 5.
	if got := c.TotalInvariants(); got != 5 {
		t.Errorf("TotalInvariants = %d, want 5", got)
	}
}

func TestClusterByPattern(t *testing.T) {
	s := testSchema()
	instances := mkInstances("a", 15, 4, 4, "mdA", "1000", "92")
	c, err := Run(s, instances, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	p := c.Clusters[0].Pattern
	if got := c.ClusterByPattern(p); got != 0 {
		t.Errorf("ClusterByPattern = %d", got)
	}
	if got := c.ClusterByPattern(Pattern{Values: []string{"x", "y", "z"}}); got != -1 {
		t.Errorf("unknown pattern = %d, want -1", got)
	}
	if got := c.ClusterOf("missing"); got != -1 {
		t.Errorf("ClusterOf(missing) = %d, want -1", got)
	}
}

func TestDeterminism(t *testing.T) {
	s := testSchema()
	r := simrng.New(5).Stream("epm3")
	var instances []Instance
	for i := 0; i < 200; i++ {
		instances = append(instances, Instance{
			ID:       fmt.Sprintf("ev%03d", i),
			Attacker: fmt.Sprintf("a%d", r.Intn(6)),
			Sensor:   fmt.Sprintf("s%d", r.Intn(6)),
			Values:   []string{fmt.Sprintf("m%d", r.Intn(8)), "100", "92"},
		})
	}
	a, err := Run(s, instances, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, instances, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Clusters) != len(b.Clusters) {
		t.Fatal("cluster count not deterministic")
	}
	for i := range a.Clusters {
		if a.Clusters[i].Pattern.Key() != b.Clusters[i].Pattern.Key() {
			t.Fatalf("cluster %d pattern differs", i)
		}
	}
}

func TestClassifyRejectsWildcardValues(t *testing.T) {
	s := testSchema()
	c, err := Run(s, mkInstances("a", 15, 4, 4, "mdA", "1000", "92"), DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	// "*" would match every pattern at that position; the caller must get
	// ok=false instead of a bogus most-specific match.
	if _, _, ok := c.Classify([]string{"*", "1000", "92"}); ok {
		t.Error("caller-supplied wildcard must not classify")
	}
	if _, _, ok := c.Classify([]string{"mdA", "*", "92"}); ok {
		t.Error("caller-supplied wildcard must not classify")
	}
	if _, _, ok := c.Classify([]string{"mdA", "1000"}); ok {
		t.Error("arity mismatch must not classify")
	}
}

func TestClassifyFastPathAgreesWithScan(t *testing.T) {
	// Property: generalize-then-lookup and the exhaustive most-specific
	// scan agree on every random query, seen or unseen.
	s := testSchema()
	r := simrng.New(7).Stream("epm-fastpath")
	md5s := []string{"m1", "m2", "m3", "m4", "rare1", "rare2"}
	sizes := []string{"100", "200", "300", "400"}
	linkers := []string{"71", "92", "60"}
	var instances []Instance
	for i := 0; i < 400; i++ {
		instances = append(instances, Instance{
			ID:       fmt.Sprintf("ev%03d", i),
			Attacker: fmt.Sprintf("a%d", r.Intn(8)),
			Sensor:   fmt.Sprintf("s%d", r.Intn(6)),
			Values: []string{
				md5s[r.Intn(len(md5s))],
				sizes[r.Intn(len(sizes))],
				linkers[r.Intn(len(linkers))],
			},
		})
	}
	c, err := Run(s, instances, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	// Query pool includes values never observed in the corpus.
	md5s = append(md5s, "never-seen-md5", "x")
	sizes = append(sizes, "999")
	linkers = append(linkers, "1")
	for i := 0; i < 2000; i++ {
		vals := []string{
			md5s[r.Intn(len(md5s))],
			sizes[r.Intn(len(sizes))],
			linkers[r.Intn(len(linkers))],
		}
		fp, fi, fok := c.Classify(vals)
		sp, si, sok := c.classifyScan(vals)
		if fok != sok || fi != si || (fok && fp.Key() != sp.Key()) {
			t.Fatalf("Classify(%v) = (%v, %d, %v), scan = (%v, %d, %v)",
				vals, fp, fi, fok, sp, si, sok)
		}
	}
}

func TestRunParallelWorkerCountInvariance(t *testing.T) {
	// The clustering must be byte-identical at every worker count.
	s := testSchema()
	r := simrng.New(8).Stream("epm-par")
	var instances []Instance
	for i := 0; i < 1200; i++ {
		instances = append(instances, Instance{
			ID:       fmt.Sprintf("ev%04d", i),
			Attacker: fmt.Sprintf("a%d", r.Intn(40)),
			Sensor:   fmt.Sprintf("s%d", r.Intn(20)),
			Values: []string{
				fmt.Sprintf("m%d", r.Intn(30)),
				fmt.Sprintf("%d", 100*r.Intn(8)),
				fmt.Sprintf("%d", 60+r.Intn(4)),
			},
		})
	}
	var want []byte
	for _, workers := range []int{1, 2, 3, 8, 0} {
		c, err := RunParallel(s, instances, DefaultThresholds(), workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := c.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("clustering differs at workers=%d", workers)
		}
	}
}

// BenchmarkClassifyFastPathVsScan contrasts generalize-then-lookup
// classification with the exhaustive scan at a paper-scale cluster count
// (hundreds of M-clusters).
func BenchmarkClassifyFastPathVsScan(b *testing.B) {
	s := Schema{Dimension: "mu", Features: []string{"md5", "size", "type", "linker", "sections"}}
	r := simrng.New(9).Stream("bench-classify")
	var instances []Instance
	for i := 0; i < 8000; i++ {
		fam := r.Intn(300)
		instances = append(instances, Instance{
			ID:       fmt.Sprintf("ev%05d", i),
			Attacker: fmt.Sprintf("a%d", r.Intn(400)),
			Sensor:   fmt.Sprintf("s%d", r.Intn(150)),
			Values: []string{
				fmt.Sprintf("md5-%d", i),
				fmt.Sprintf("%d", 1000*fam),
				"pe",
				fmt.Sprintf("%d", 60+fam%7),
				".text,.data",
			},
		})
	}
	c, err := Run(s, instances, DefaultThresholds())
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("clusters: %d", len(c.Clusters))
	b.Run("fastpath", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, ok := c.Classify(instances[i%len(instances)].Values); !ok {
				b.Fatal("classification failed")
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, ok := c.classifyScan(instances[i%len(instances)].Values); !ok {
				b.Fatal("classification failed")
			}
		}
	})
}

func BenchmarkRun(b *testing.B) {
	s := Schema{Dimension: "mu", Features: []string{
		"md5", "size", "type", "machine", "nsections", "ndlls", "os", "linker", "sections", "dlls", "k32",
	}}
	r := simrng.New(6).Stream("bench")
	instances := make([]Instance, 0, 5000)
	for i := 0; i < 5000; i++ {
		fam := r.Intn(50)
		instances = append(instances, Instance{
			ID:       fmt.Sprintf("ev%05d", i),
			Attacker: fmt.Sprintf("a%d", r.Intn(300)),
			Sensor:   fmt.Sprintf("s%d", r.Intn(150)),
			Values: []string{
				fmt.Sprintf("md5-%d", i), // polymorphic
				fmt.Sprintf("%d", 1000*fam),
				"pe", "332", "3", "1", "40",
				fmt.Sprintf("%d", 60+fam%5),
				".text,.data", "KERNEL32.dll", "GetProcAddress",
			},
		})
	}
	th := DefaultThresholds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(s, instances, th); err != nil {
			b.Fatal(err)
		}
	}
}
