package epm

import (
	"fmt"
	"sort"
)

// Merge combines the integrated state of several Incremental engines —
// one per shard, over disjoint instance sets — into a single Clustering
// that is byte-identical to RunParallel over the union of their ingested
// instances. Pending (un-epoched) instances are excluded, mirroring each
// engine's own Clustering.
//
// The union of per-shard pattern tables alone is not enough: invariant
// status is monotone under merging (counts only grow, so every
// shard-invariant value is globally invariant), but a value can cross
// the relevance thresholds only in aggregate — say, four witnesses on
// each of three shards with MinInstances ten. Such a crossing refines
// patterns that the owning shards recorded with a wildcard at that
// position. Merge therefore works from the sketches, not the patterns:
//
//  1. Fold the per-shard value sketches into global sketches (sum
//     instance counts, union attacker and sensor sets) and derive the
//     global invariant sets.
//  2. For each shard, compute the newly-invariant values — globally
//     invariant but not shard-invariant. A shard group is clean when no
//     wildcard position of its pattern has a newly-invariant value;
//     clean groups merge wholesale (member lists concatenate, attacker
//     and sensor sets union). A dirty group's members are re-generalized
//     individually under the global invariants, exactly as a shard's own
//     full regroup would after the crossing.
//  3. Materialize with RunParallel's total order (size desc, pattern key
//     asc) and dense IDs.
//
// Non-wildcard positions never change: they hold shard-invariant values,
// which stay invariant globally, so merging can only split groups at
// wildcard positions — never coarsen them. The differential property
// test proves the byte-identity, including the aggregate-only crossing.
//
// The returned Clustering is self-contained: member lists, invariant
// sets, and indexes are copies, valid after the source engines advance.
// Callers must not run engine epochs concurrently with Merge.
func Merge(parts []*Incremental) (*Clustering, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("epm: merge of zero parts")
	}
	schema, th := parts[0].schema, parts[0].th
	for _, p := range parts[1:] {
		if err := sameSchema(schema, p.schema); err != nil {
			return nil, err
		}
		if p.th != th {
			return nil, fmt.Errorf("epm: merge with mismatched thresholds %+v vs %+v", p.th, th)
		}
	}
	nf := len(schema.Features)

	// Phase 1: global sketches and invariant sets.
	type mergedSketch struct {
		instances int
		attackers map[string]struct{}
		sensors   map[string]struct{}
	}
	global := make([]map[string]*mergedSketch, nf)
	inv := make([]map[string]bool, nf)
	for fi := 0; fi < nf; fi++ {
		g := make(map[string]*mergedSketch)
		for _, p := range parts {
			for v, vs := range p.sketches[fi] {
				m, ok := g[v]
				if !ok {
					m = &mergedSketch{
						attackers: make(map[string]struct{}, len(vs.attackers)),
						sensors:   make(map[string]struct{}, len(vs.sensors)),
					}
					g[v] = m
				}
				m.instances += vs.instances
				for a := range vs.attackers {
					m.attackers[a] = struct{}{}
				}
				for s := range vs.sensors {
					m.sensors[s] = struct{}{}
				}
			}
		}
		iv := make(map[string]bool)
		for v, m := range g {
			if m.instances >= th.MinInstances &&
				len(m.attackers) >= th.MinAttackers &&
				len(m.sensors) >= th.MinSensors {
				iv[v] = true
			}
		}
		global[fi], inv[fi] = g, iv
	}

	// Phase 2: fold shard groups. mgroup mirrors igroup but owns its
	// member storage, so the merged clustering survives engine epochs.
	type mgroup struct {
		pattern   Pattern
		ids       []string
		attackers map[string]struct{}
		sensors   map[string]struct{}
	}
	acc := make(map[string]*mgroup)
	fold := func(key string, pattern func() Pattern, ids []string, in *Instance) *mgroup {
		m, ok := acc[key]
		if !ok {
			m = &mgroup{
				pattern:   pattern(),
				attackers: make(map[string]struct{}),
				sensors:   make(map[string]struct{}),
			}
			acc[key] = m
		}
		m.ids = append(m.ids, ids...)
		if in != nil {
			m.ids = append(m.ids, in.ID)
			m.attackers[in.Attacker] = struct{}{}
			m.sensors[in.Sensor] = struct{}{}
		}
		return m
	}
	for _, p := range parts {
		newInv := make([]map[string]bool, nf)
		dirtyPossible := false
		for fi := 0; fi < nf; fi++ {
			var ni map[string]bool
			for v := range inv[fi] {
				if !p.invariants[fi][v] {
					if ni == nil {
						ni = make(map[string]bool)
					}
					ni[v] = true
				}
			}
			newInv[fi] = ni
			dirtyPossible = dirtyPossible || ni != nil
		}
		dirty := make(map[*igroup]bool)
		for key, g := range p.groups {
			isDirty := false
			if dirtyPossible {
				for fi, v := range g.pattern.Values {
					if v == Wildcard && newInv[fi] != nil {
						isDirty = true
						break
					}
				}
			}
			if isDirty {
				// A wildcard position gained invariants; members whose
				// value there crossed must move to a more specific
				// pattern. Re-generalize them individually below.
				dirty[g] = true
				continue
			}
			g := g
			m := fold(key, func() Pattern { return g.pattern }, g.ids, nil)
			for a := range g.attackers {
				m.attackers[a] = struct{}{}
			}
			for s := range g.sensors {
				m.sensors[s] = struct{}{}
			}
		}
		if len(dirty) > 0 {
			ingested := p.instances[:p.ingested]
			for i := range ingested {
				in := &ingested[i]
				if !dirty[p.memberOf[in.ID]] {
					continue
				}
				key := generalizedKeyWith(in.Values, inv)
				fold(key, func() Pattern { return generalizeWith(in.Values, inv) }, nil, in)
			}
		}
	}

	// Phase 3: materialize in RunParallel's canonical order.
	c := &Clustering{
		Schema:     schema,
		Thresholds: th,
		Stats:      make([]FeatureStat, nf),
		invariants: inv,
		byInstance: make(map[string]int),
		byPattern:  make(map[string]int, len(acc)),
	}
	for fi := 0; fi < nf; fi++ {
		c.Stats[fi] = FeatureStat{
			Feature:        schema.Features[fi],
			Invariants:     len(inv[fi]),
			DistinctValues: len(global[fi]),
		}
	}
	order := make([]*mgroup, 0, len(acc))
	for _, m := range acc {
		sort.Strings(m.ids)
		order = append(order, m)
	}
	sort.Slice(order, func(a, b int) bool {
		if len(order[a].ids) != len(order[b].ids) {
			return len(order[a].ids) > len(order[b].ids)
		}
		return order[a].pattern.Key() < order[b].pattern.Key()
	})
	c.Clusters = make([]Cluster, len(order))
	for i, m := range order {
		c.Clusters[i] = Cluster{
			ID:          i,
			Pattern:     m.pattern,
			InstanceIDs: m.ids,
			Attackers:   len(m.attackers),
			Sensors:     len(m.sensors),
		}
		c.byPattern[m.pattern.Key()] = i
		for _, id := range m.ids {
			if _, ok := c.byInstance[id]; ok {
				return nil, fmt.Errorf("epm: merge saw instance ID %q on more than one part", id)
			}
			c.byInstance[id] = i
		}
	}
	return c, nil
}

// sameSchema checks that two dimension schemas are identical.
func sameSchema(a, b Schema) error {
	if a.Dimension != b.Dimension || len(a.Features) != len(b.Features) {
		return fmt.Errorf("epm: merge with mismatched schemas %q vs %q", a.Dimension, b.Dimension)
	}
	for i := range a.Features {
		if a.Features[i] != b.Features[i] {
			return fmt.Errorf("epm: merge schemas differ at feature %d: %q vs %q",
				i, a.Features[i], b.Features[i])
		}
	}
	return nil
}
