package epm

import (
	"fmt"
	"sort"
)

// Incremental is the streaming counterpart of RunParallel: instances are
// added one at a time and integrated at epoch boundaries, and the cost of
// an epoch tracks the number of instances added since the previous epoch
// — not the corpus size.
//
// The engine keeps three pieces of persistent state that RunParallel
// rebuilds from scratch on every call:
//
//   - Per-feature value-count sketches: for every (feature, value) pair,
//     the exact instance count and the distinct attacker and sensor sets
//     that feed the Phase-2 relevance thresholds. Sketches are mergeable
//     — an epoch folds only the new instances in — and because the
//     counts only grow, a value's invariant status is monotone: once a
//     value crosses the thresholds it stays an invariant forever.
//   - The invariant sets derived from the sketches.
//   - The pattern groups (the Phase-3 state): one accumulator per
//     generalized pattern holding its sorted member IDs and distinct
//     attacker/sensor sets.
//
// An epoch first merges the pending pool into the sketches. When no
// value crossed a relevance threshold, the invariant sets are unchanged,
// so every previously grouped instance generalizes to the same pattern
// as before and only the new instances need placing (a delta epoch).
// When a value did cross, patterns of existing instances may split —
// the crossing invalidates the pattern tree — and the engine falls back
// to regrouping every instance under the updated invariant sets (a full
// regroup). The fallback still skips Phase-2 entirely: the sketches
// already hold the exact counts.
//
// Either way the materialized Clustering is byte-identical to
// RunParallel over the same instances (the differential property test
// proves this at every epoch size), so callers that previously re-ran
// full discovery per epoch can switch paths without any output change.
//
// An Incremental is not safe for concurrent use. The Clustering returned
// by Epoch shares group storage with the engine and is valid until the
// next Epoch call; callers needing a longer-lived snapshot should
// serialize it (WriteJSON) before adding more instances.
type Incremental struct {
	schema Schema
	th     Thresholds

	// pending tracks only the IDs added since the last epoch; ingested
	// IDs are duplicate-checked against memberOf instead, so the engine
	// never keeps a second corpus-sized ID set alive.
	pending   map[string]struct{}
	instances []Instance
	ingested  int // instances[:ingested] are in the sketches and groups

	sketches   []map[string]*valueSketch
	invariants []map[string]bool

	groups   map[string]*igroup
	memberOf map[string]*igroup

	cur          *Clustering
	epochs       int
	deltaEpochs  int
	fullRegroups int
}

// valueSketch is the mergeable relevance counter of one feature value:
// the exact inputs of the Phase-2 invariant decision.
type valueSketch struct {
	instances int
	attackers map[string]struct{}
	sensors   map[string]struct{}
}

func (v *valueSketch) invariant(th Thresholds) bool {
	return v.instances >= th.MinInstances &&
		len(v.attackers) >= th.MinAttackers &&
		len(v.sensors) >= th.MinSensors
}

// igroup is the persistent accumulator of one generalized pattern.
type igroup struct {
	pattern   Pattern
	key       string
	ids       []string // sorted
	attackers map[string]struct{}
	sensors   map[string]struct{}
	idx       int // index in the last materialized Clustering
}

// NewIncremental returns an empty incremental engine.
func NewIncremental(schema Schema, th Thresholds) (*Incremental, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if err := th.Validate(); err != nil {
		return nil, err
	}
	inc := &Incremental{
		schema:     schema,
		th:         th,
		pending:    make(map[string]struct{}),
		sketches:   make([]map[string]*valueSketch, len(schema.Features)),
		invariants: make([]map[string]bool, len(schema.Features)),
		groups:     make(map[string]*igroup),
		memberOf:   make(map[string]*igroup),
	}
	for fi := range schema.Features {
		inc.sketches[fi] = make(map[string]*valueSketch)
		inc.invariants[fi] = make(map[string]bool)
	}
	return inc, nil
}

// Add appends one instance to the pending pool, enforcing exactly the
// input invariants RunParallel enforces.
func (inc *Incremental) Add(in Instance) error {
	if err := inc.validate(in); err != nil {
		return err
	}
	if _, ok := inc.memberOf[in.ID]; ok {
		return fmt.Errorf("epm: duplicate instance ID %q", in.ID)
	}
	if _, ok := inc.pending[in.ID]; ok {
		return fmt.Errorf("epm: duplicate instance ID %q", in.ID)
	}
	inc.pending[in.ID] = struct{}{}
	inc.instances = append(inc.instances, in)
	return nil
}

// AddTrusted is Add minus the duplicate-ID screen, for callers that
// already deduplicate IDs upstream (the streaming service's event store
// does): it keeps the field validation, which is cheap, and skips the
// two hash probes per arrival that only re-derive a fact the caller
// guarantees. Feeding it a duplicate ID silently diverges from the
// RunParallel contract, so a stream must either stay deduplicated or
// use Add throughout.
func (inc *Incremental) AddTrusted(in Instance) error {
	if err := inc.validate(in); err != nil {
		return err
	}
	inc.instances = append(inc.instances, in)
	return nil
}

func (inc *Incremental) validate(in Instance) error {
	if in.ID == "" {
		return fmt.Errorf("epm: instance with empty ID")
	}
	if in.Attacker == "" {
		return fmt.Errorf("epm: instance %q has an empty attacker", in.ID)
	}
	if in.Sensor == "" {
		return fmt.Errorf("epm: instance %q has an empty sensor", in.ID)
	}
	if len(in.Values) != len(inc.schema.Features) {
		return fmt.Errorf("epm: instance %q has %d values for %d features",
			in.ID, len(in.Values), len(inc.schema.Features))
	}
	for _, v := range in.Values {
		if v == Wildcard {
			return fmt.Errorf("epm: instance %q uses reserved value %q", in.ID, Wildcard)
		}
	}
	return nil
}

// Len reports the total number of added instances.
func (inc *Incremental) Len() int { return len(inc.instances) }

// Pending reports the instances added since the last epoch.
func (inc *Incremental) Pending() int { return len(inc.instances) - inc.ingested }

// Epochs, DeltaEpochs, and FullRegroups report how the work split:
// Epochs = DeltaEpochs + FullRegroups.
func (inc *Incremental) Epochs() int       { return inc.epochs }
func (inc *Incremental) DeltaEpochs() int  { return inc.deltaEpochs }
func (inc *Incremental) FullRegroups() int { return inc.fullRegroups }

// Instances exposes the instance log in arrival order. Callers must
// treat it as read-only.
func (inc *Incremental) Instances() []Instance { return inc.instances }

// Clustering returns the last epoch's materialization, nil before the
// first epoch.
func (inc *Incremental) Clustering() *Clustering { return inc.cur }

// Epoch integrates the pending pool and materializes the clustering over
// every instance added so far. The second return reports whether a
// threshold crossing forced the full-regroup fallback. The result is
// byte-identical to RunParallel over Instances().
func (inc *Incremental) Epoch() (*Clustering, bool) {
	delta := inc.instances[inc.ingested:]
	crossed := inc.mergeSketches(delta)
	full := crossed || inc.epochs == 0
	if full {
		inc.regroupAll()
	} else {
		for i := range delta {
			inc.place(&delta[i], true)
		}
	}
	inc.ingested = len(inc.instances)
	clear(inc.pending)
	inc.epochs++
	if full {
		inc.fullRegroups++
	} else {
		inc.deltaEpochs++
	}
	inc.cur = inc.materialize()
	return inc.cur, full
}

// mergeSketches folds the delta into the per-feature sketches and
// reports whether any value crossed the relevance thresholds (counts
// only grow, so crossings are strictly false -> true).
func (inc *Incremental) mergeSketches(delta []Instance) bool {
	crossed := false
	for fi := range inc.schema.Features {
		sk := inc.sketches[fi]
		inv := inc.invariants[fi]
		for i := range delta {
			in := &delta[i]
			v := in.Values[fi]
			vs, ok := sk[v]
			if !ok {
				vs = &valueSketch{
					attackers: make(map[string]struct{}),
					sensors:   make(map[string]struct{}),
				}
				sk[v] = vs
			}
			vs.instances++
			// Check-before-insert: almost every arrival repeats an
			// already-counted attacker/sensor, and a plain lookup skips
			// the write barrier and growth work a blind assign pays.
			if _, ok := vs.attackers[in.Attacker]; !ok {
				vs.attackers[in.Attacker] = struct{}{}
			}
			if _, ok := vs.sensors[in.Sensor]; !ok {
				vs.sensors[in.Sensor] = struct{}{}
			}
			if !inv[v] && vs.invariant(inc.th) {
				inv[v] = true
				crossed = true
			}
		}
	}
	return crossed
}

// place files one instance into its pattern group under the current
// invariant sets. Delta epochs insert in sorted position (the group is
// already sorted); regroupAll appends and sorts once at the end.
func (inc *Incremental) place(in *Instance, sorted bool) {
	key := generalizedKeyWith(in.Values, inc.invariants)
	g, ok := inc.groups[key]
	if !ok {
		g = &igroup{
			pattern:   generalizeWith(in.Values, inc.invariants),
			key:       key,
			attackers: make(map[string]struct{}),
			sensors:   make(map[string]struct{}),
		}
		inc.groups[key] = g
	}
	if sorted {
		g.insert(in.ID)
	} else {
		g.ids = append(g.ids, in.ID)
	}
	g.attackers[in.Attacker] = struct{}{}
	g.sensors[in.Sensor] = struct{}{}
	inc.memberOf[in.ID] = g
}

// regroupAll is the full-rebuild fallback: every instance is regrouped
// under the updated invariant sets. Phase 2 is not repeated — the
// sketches already hold the exact counts.
func (inc *Incremental) regroupAll() {
	inc.groups = make(map[string]*igroup, len(inc.groups))
	clear(inc.memberOf)
	for i := range inc.instances {
		inc.place(&inc.instances[i], false)
	}
	for _, g := range inc.groups {
		sort.Strings(g.ids)
	}
}

// insert adds id to the sorted member list. Monotonically increasing IDs
// (the common streaming case) append in O(1).
func (g *igroup) insert(id string) {
	if n := len(g.ids); n == 0 || g.ids[n-1] < id {
		g.ids = append(g.ids, id)
		return
	}
	pos := sort.SearchStrings(g.ids, id)
	g.ids = append(g.ids, "")
	copy(g.ids[pos+1:], g.ids[pos:])
	g.ids[pos] = id
}

// materialize assembles the current groups into a Clustering that is
// byte-identical to RunParallel's. Cost is O(groups log groups), never
// O(instances): cluster slices share the groups' member storage and
// instance lookup delegates to the engine's membership index.
func (inc *Incremental) materialize() *Clustering {
	c := &Clustering{
		Schema:     inc.schema,
		Thresholds: inc.th,
		Stats:      make([]FeatureStat, len(inc.schema.Features)),
		invariants: make([]map[string]bool, len(inc.schema.Features)),
		byPattern:  make(map[string]int, len(inc.groups)),
		lookup:     inc.clusterOf,
	}
	for fi, f := range inc.schema.Features {
		inv := make(map[string]bool, len(inc.invariants[fi]))
		for v := range inc.invariants[fi] {
			inv[v] = true
		}
		c.invariants[fi] = inv
		c.Stats[fi] = FeatureStat{
			Feature:        f,
			Invariants:     len(inv),
			DistinctValues: len(inc.sketches[fi]),
		}
	}
	order := make([]*igroup, 0, len(inc.groups))
	for _, g := range inc.groups {
		order = append(order, g)
	}
	sort.Slice(order, func(a, b int) bool {
		if len(order[a].ids) != len(order[b].ids) {
			return len(order[a].ids) > len(order[b].ids)
		}
		return order[a].key < order[b].key
	})
	c.Clusters = make([]Cluster, len(order))
	for i, g := range order {
		g.idx = i
		c.Clusters[i] = Cluster{
			ID:          i,
			Pattern:     g.pattern,
			InstanceIDs: g.ids,
			Attackers:   len(g.attackers),
			Sensors:     len(g.sensors),
		}
		c.byPattern[g.key] = i
	}
	return c
}

// clusterOf backs ClusterOf on materialized clusterings: the engine's
// membership index maps the ID to its group, whose idx was assigned at
// the last materialization.
func (inc *Incremental) clusterOf(id string) int {
	if g, ok := inc.memberOf[id]; ok {
		return g.idx
	}
	return -1
}
