package epm_test

import (
	"fmt"

	"repro/internal/epm"
)

// Example demonstrates the four EPM phases on a tiny polymorphic corpus:
// the MD5 varies per attack and never becomes an invariant, while size
// and linker survive, so one pattern groups all attacks of the family.
func Example() {
	schema := epm.Schema{
		Dimension: "mu",
		Features:  []string{"md5", "size", "linker"},
	}
	var instances []epm.Instance
	for i := 0; i < 12; i++ {
		instances = append(instances, epm.Instance{
			ID:       fmt.Sprintf("attack-%02d", i),
			Attacker: fmt.Sprintf("10.0.0.%d", i%4), // 4 distinct attackers
			Sensor:   fmt.Sprintf("sensor-%d", i%3), // 3 distinct honeypots
			Values:   []string{fmt.Sprintf("unique-%d", i), "59904", "92"},
		})
	}

	clustering, err := epm.Run(schema, instances, epm.DefaultThresholds())
	if err != nil {
		panic(err)
	}
	for _, c := range clustering.Clusters {
		fmt.Printf("cluster %d: %d attacks, pattern %s\n", c.ID, c.Size(), c.Pattern)
	}
	fmt.Printf("md5 invariants: %d, size invariants: %d\n",
		clustering.Stats[0].Invariants, clustering.Stats[1].Invariants)

	// Output:
	// cluster 0: 12 attacks, pattern (*, 59904, 92)
	// md5 invariants: 0, size invariants: 1
}

// ExampleClustering_Classify shows most-specific-pattern classification of
// a fresh attack instance against discovered patterns.
func ExampleClustering_Classify() {
	schema := epm.Schema{Dimension: "mu", Features: []string{"md5", "size"}}
	var instances []epm.Instance
	// A stable family: the MD5 repeats and becomes invariant.
	for i := 0; i < 12; i++ {
		instances = append(instances, epm.Instance{
			ID:       fmt.Sprintf("stable-%02d", i),
			Attacker: fmt.Sprintf("a%d", i%4),
			Sensor:   fmt.Sprintf("s%d", i%3),
			Values:   []string{"cafebabe", "1000"},
		})
	}
	// A polymorphic family of the same size.
	for i := 0; i < 12; i++ {
		instances = append(instances, epm.Instance{
			ID:       fmt.Sprintf("poly-%02d", i),
			Attacker: fmt.Sprintf("a%d", i%4),
			Sensor:   fmt.Sprintf("s%d", i%3),
			Values:   []string{fmt.Sprintf("rnd-%d", i), "1000"},
		})
	}
	clustering, err := epm.Run(schema, instances, epm.DefaultThresholds())
	if err != nil {
		panic(err)
	}

	// The known MD5 matches its fully-specific pattern; a never-seen MD5
	// falls back to the generalized one.
	p1, _, _ := clustering.Classify([]string{"cafebabe", "1000"})
	p2, _, _ := clustering.Classify([]string{"deadbeef", "1000"})
	fmt.Println(p1)
	fmt.Println(p2)

	// Output:
	// (cafebabe, 1000)
	// (*, 1000)
}
