// Package avsim simulates the VirusTotal-style AV labeling the SGNET
// enrichment pipeline attaches to every collected sample.
//
// The paper uses the names assigned by a popular AV vendor as supporting
// evidence (Figure 4: most misclassified samples are "different variants
// of the Rahack worm"). The oracle therefore produces labels with the two
// properties that matter: family-level consistency (samples of one family
// get the vendor's name for that family) and variant-level noise (a
// letter suffix spread plus occasional generic labels), both derived
// deterministically from the sample hash.
package avsim

import (
	"fmt"
	"hash/fnv"
)

// Oracle assigns AV labels.
type Oracle struct {
	// GenericProb is the probability that a sample receives a generic
	// label instead of its family name.
	GenericProb float64
	// UndetectedProb is the probability that the vendor has no signature
	// at all for the sample.
	UndetectedProb float64
}

// New returns an oracle with the given noise rates.
func New(genericProb, undetectedProb float64) *Oracle {
	return &Oracle{GenericProb: genericProb, UndetectedProb: undetectedProb}
}

// Generic labels vendors fall back to.
var genericLabels = []string{
	"Trojan.Gen",
	"W32.Malware!gen",
	"Suspicious.Cloud",
	"Downloader",
	"Backdoor.Trojan",
}

// Label returns the vendor label for a sample: familyAVName is the
// vendor's base name for the sample's family (e.g. "W32.Rahack"), md5
// identifies the sample. The result is deterministic in both.
func (o *Oracle) Label(familyAVName, md5 string) string {
	h := hashOf(md5)
	u := float64(h%10000) / 10000

	switch {
	case u < o.UndetectedProb:
		return ""
	case u < o.UndetectedProb+o.GenericProb:
		return genericLabels[int(h>>16)%len(genericLabels)]
	}
	if familyAVName == "" {
		return genericLabels[int(h>>16)%len(genericLabels)]
	}
	// Variant suffix: vendors split one family into a handful of letter
	// variants; derive the letter from an independent part of the hash.
	suffix := 'A' + rune((h>>32)%6)
	return fmt.Sprintf("%s.%c", familyAVName, suffix)
}

func hashOf(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
