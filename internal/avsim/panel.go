package avsim

import (
	"fmt"
	"sort"
)

// Vendor is one simulated AV engine with its own naming convention and
// noise characteristics. Prior work the paper builds on (Bailey et al.,
// Canto et al.) documents that vendors disagree wildly on names; the
// panel reproduces that disagreement so label-consistency analyses have
// something real to measure.
type Vendor struct {
	// Name is the vendor identifier.
	Name string
	// Style renders a family base name into this vendor's convention.
	Style func(family string) string
	// GenericProb and UndetectedProb are the vendor's noise rates.
	GenericProb    float64
	UndetectedProb float64
	// SuffixSalt decorrelates the vendors' variant-letter assignment.
	SuffixSalt uint64
}

// Panel is a set of vendors labeling the same corpus.
type Panel struct {
	vendors []Vendor
}

// DefaultPanel returns three vendors with distinct conventions and noise
// levels. Vendor naming maps are fixed: the same ground-truth family gets
// a stable per-vendor alias, like real-world cross-vendor naming chaos
// ("Allaple" vs "Rahack").
func DefaultPanel() *Panel {
	alias := func(prefix string, renames map[string]string) func(string) string {
		return func(family string) string {
			if family == "" {
				return ""
			}
			name := family
			if r, ok := renames[family]; ok {
				name = r
			}
			return prefix + name
		}
	}
	return &Panel{vendors: []Vendor{
		{
			Name:           "vendor-a",
			Style:          alias("W32.", map[string]string{"W32.Rahack": "Rahack"}),
			GenericProb:    0.08,
			UndetectedProb: 0.03,
			SuffixSalt:     0xA,
		},
		{
			Name:           "vendor-b",
			Style:          alias("Worm.Win32.", map[string]string{"W32.Rahack": "Allaple"}),
			GenericProb:    0.15,
			UndetectedProb: 0.06,
			SuffixSalt:     0xB,
		},
		{
			Name:           "vendor-c",
			Style:          alias("Win32/", map[string]string{"W32.Rahack": "Rahack"}),
			GenericProb:    0.05,
			UndetectedProb: 0.10,
			SuffixSalt:     0xC,
		},
	}}
}

// Vendors returns the vendor names in panel order.
func (p *Panel) Vendors() []string {
	out := make([]string, len(p.vendors))
	for i, v := range p.vendors {
		out[i] = v.Name
	}
	return out
}

// Labels returns every vendor's label for a sample. familyAVName is the
// canonical base name the landscape assigns (vendor styles re-render it);
// md5 identifies the sample. Absent detections map to "".
func (p *Panel) Labels(familyAVName, md5 string) map[string]string {
	out := make(map[string]string, len(p.vendors))
	for _, v := range p.vendors {
		h := hashOf(md5) ^ (v.SuffixSalt * 0x9e3779b97f4a7c15)
		u := float64(h%10000) / 10000
		switch {
		case u < v.UndetectedProb:
			out[v.Name] = ""
		case u < v.UndetectedProb+v.GenericProb:
			out[v.Name] = genericLabels[int(h>>16)%len(genericLabels)]
		default:
			base := v.Style(familyAVName)
			if base == "" {
				out[v.Name] = genericLabels[int(h>>16)%len(genericLabels)]
				continue
			}
			out[v.Name] = fmt.Sprintf("%s.%c", base, 'A'+rune((h>>32)%6))
		}
	}
	return out
}

// ConsistencyReport summarizes cross-vendor label agreement over a set of
// samples grouped into clusters.
type ConsistencyReport struct {
	// Samples is the number of labeled samples scored.
	Samples int
	// DetectionRate is the fraction of (sample, vendor) pairs with any
	// label.
	DetectionRate float64
	// MeanDominance is the average, over clusters and vendors, of the
	// share of the cluster covered by the vendor's most common family
	// label — high values mean labels are at least internally consistent.
	MeanDominance float64
	// PerVendorFamilies maps vendor to the number of distinct family base
	// names it used (variant suffixes stripped).
	PerVendorFamilies map[string]int
}

// Consistency scores label agreement: labels maps sample → vendor →
// label; clusters lists sample groups (e.g. M-clusters).
func Consistency(labels map[string]map[string]string, clusters [][]string) ConsistencyReport {
	rep := ConsistencyReport{PerVendorFamilies: make(map[string]int)}
	vendorFamilies := make(map[string]map[string]bool)
	detections, pairs := 0, 0

	var domSum float64
	var domCount int
	for _, cluster := range clusters {
		// vendor -> family label -> count within this cluster.
		counts := make(map[string]map[string]int)
		for _, id := range cluster {
			vl, ok := labels[id]
			if !ok {
				continue
			}
			rep.Samples++
			for vendor, label := range vl {
				pairs++
				if label == "" {
					continue
				}
				detections++
				family := stripVariant(label)
				if counts[vendor] == nil {
					counts[vendor] = make(map[string]int)
				}
				counts[vendor][family]++
				if vendorFamilies[vendor] == nil {
					vendorFamilies[vendor] = make(map[string]bool)
				}
				vendorFamilies[vendor][family] = true
			}
		}
		for _, famCounts := range counts {
			best, total := 0, 0
			for _, c := range famCounts {
				total += c
				if c > best {
					best = c
				}
			}
			if total > 0 {
				domSum += float64(best) / float64(total)
				domCount++
			}
		}
	}
	if pairs > 0 {
		rep.DetectionRate = float64(detections) / float64(pairs)
	}
	if domCount > 0 {
		rep.MeanDominance = domSum / float64(domCount)
	}
	for vendor, fams := range vendorFamilies {
		rep.PerVendorFamilies[vendor] = len(fams)
	}
	return rep
}

// stripVariant removes a trailing single-letter variant suffix.
func stripVariant(label string) string {
	if n := len(label); n > 2 && label[n-2] == '.' {
		return label[:n-2]
	}
	return label
}

// SortedVendors returns the vendor keys of a per-vendor map, sorted.
func SortedVendors[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
