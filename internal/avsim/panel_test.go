package avsim

import (
	"fmt"
	"strings"
	"testing"
)

func TestPanelDeterministic(t *testing.T) {
	p := DefaultPanel()
	a := p.Labels("W32.Rahack", "md5-1")
	b := p.Labels("W32.Rahack", "md5-1")
	for vendor, label := range a {
		if b[vendor] != label {
			t.Errorf("vendor %s label differs: %q vs %q", vendor, label, b[vendor])
		}
	}
}

func TestPanelVendorConventions(t *testing.T) {
	p := DefaultPanel()
	sawA, sawB, sawC := false, false, false
	for i := 0; i < 100; i++ {
		labels := p.Labels("W32.Rahack", fmt.Sprintf("md5-%d", i))
		if strings.HasPrefix(labels["vendor-a"], "W32.Rahack.") {
			sawA = true
		}
		if strings.HasPrefix(labels["vendor-b"], "Worm.Win32.Allaple.") {
			sawB = true
		}
		if strings.HasPrefix(labels["vendor-c"], "Win32/Rahack.") {
			sawC = true
		}
	}
	if !sawA || !sawB || !sawC {
		t.Errorf("vendor conventions missing: a=%v b=%v c=%v", sawA, sawB, sawC)
	}
}

func TestPanelVendorsDisagreeOnNames(t *testing.T) {
	p := DefaultPanel()
	labels := map[string]map[string]bool{}
	for i := 0; i < 200; i++ {
		for vendor, label := range p.Labels("W32.Rahack", fmt.Sprintf("md5-%d", i)) {
			if label == "" {
				continue
			}
			if labels[vendor] == nil {
				labels[vendor] = map[string]bool{}
			}
			labels[vendor][stripVariant(label)] = true
		}
	}
	// vendor-a and vendor-b must use different base names for the same
	// family (the Rahack/Allaple confusion of the real AV world).
	if labels["vendor-a"]["Worm.Win32.Allaple"] {
		t.Error("vendor-a leaked vendor-b's convention")
	}
	if !labels["vendor-b"]["Worm.Win32.Allaple"] {
		t.Errorf("vendor-b families: %v", labels["vendor-b"])
	}
}

func TestPanelVendorsList(t *testing.T) {
	p := DefaultPanel()
	vendors := p.Vendors()
	if len(vendors) != 3 || vendors[0] != "vendor-a" {
		t.Errorf("Vendors = %v", vendors)
	}
}

func TestStripVariant(t *testing.T) {
	tests := map[string]string{
		"W32.Rahack.B":         "W32.Rahack",
		"Worm.Win32.Allaple.C": "Worm.Win32.Allaple",
		"Trojan.Gen":           "Trojan.Gen", // two-letter tail, no variant
		"X":                    "X",
		"":                     "",
	}
	for in, want := range tests {
		if got := stripVariant(in); got != want {
			t.Errorf("stripVariant(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestConsistencyPerfectAgreement(t *testing.T) {
	labels := map[string]map[string]string{}
	var cluster []string
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("s%d", i)
		cluster = append(cluster, id)
		labels[id] = map[string]string{
			"vendor-a": "W32.Rahack.A",
			"vendor-b": "Worm.Win32.Allaple.B",
		}
	}
	rep := Consistency(labels, [][]string{cluster})
	if rep.Samples != 10 {
		t.Errorf("samples = %d", rep.Samples)
	}
	if rep.DetectionRate != 1 {
		t.Errorf("detection rate = %v", rep.DetectionRate)
	}
	if rep.MeanDominance != 1 {
		t.Errorf("dominance = %v, want 1 (each vendor is internally consistent)", rep.MeanDominance)
	}
	if rep.PerVendorFamilies["vendor-a"] != 1 || rep.PerVendorFamilies["vendor-b"] != 1 {
		t.Errorf("per-vendor families = %v", rep.PerVendorFamilies)
	}
}

func TestConsistencyMixedCluster(t *testing.T) {
	labels := map[string]map[string]string{
		"s0": {"v": "FamA.A"},
		"s1": {"v": "FamA.B"},
		"s2": {"v": "FamB.A"},
		"s3": {"v": ""},
	}
	rep := Consistency(labels, [][]string{{"s0", "s1", "s2", "s3"}})
	// Dominance: FamA covers 2 of 3 detected.
	if want := 2.0 / 3.0; rep.MeanDominance < want-1e-9 || rep.MeanDominance > want+1e-9 {
		t.Errorf("dominance = %v, want %v", rep.MeanDominance, want)
	}
	if rep.DetectionRate != 0.75 {
		t.Errorf("detection rate = %v", rep.DetectionRate)
	}
}

func TestConsistencyEmpty(t *testing.T) {
	rep := Consistency(nil, nil)
	if rep.Samples != 0 || rep.DetectionRate != 0 || rep.MeanDominance != 0 {
		t.Errorf("empty report = %+v", rep)
	}
}

func TestSortedVendors(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2}
	got := SortedVendors(m)
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("SortedVendors = %v", got)
	}
}

func TestPanelUnknownFamilyGetsGeneric(t *testing.T) {
	p := DefaultPanel()
	for i := 0; i < 20; i++ {
		for vendor, label := range p.Labels("", fmt.Sprintf("md5-%d", i)) {
			if strings.Contains(label, "W32.") && strings.Contains(label, ".Rahack") {
				t.Errorf("vendor %s produced family label %q for unknown family", vendor, label)
			}
		}
	}
}
