package avsim

import (
	"fmt"
	"strings"
	"testing"
)

func TestLabelDeterministic(t *testing.T) {
	o := New(0.1, 0.05)
	a := o.Label("W32.Rahack", "abc123")
	b := o.Label("W32.Rahack", "abc123")
	if a != b {
		t.Errorf("labels differ: %q vs %q", a, b)
	}
}

func TestLabelFamilyConsistency(t *testing.T) {
	o := New(0, 0)
	for i := 0; i < 50; i++ {
		got := o.Label("W32.Rahack", fmt.Sprintf("md5-%d", i))
		if !strings.HasPrefix(got, "W32.Rahack.") {
			t.Fatalf("label = %q, want W32.Rahack.<letter>", got)
		}
	}
}

func TestLabelVariantSpread(t *testing.T) {
	o := New(0, 0)
	suffixes := map[string]bool{}
	for i := 0; i < 200; i++ {
		got := o.Label("W32.Rahack", fmt.Sprintf("md5-%d", i))
		suffixes[got] = true
	}
	if len(suffixes) < 3 {
		t.Errorf("only %d distinct variant labels in 200 samples", len(suffixes))
	}
}

func TestLabelNoiseRates(t *testing.T) {
	o := New(0.2, 0.1)
	generic, undetected, family := 0, 0, 0
	const n = 5000
	for i := 0; i < n; i++ {
		got := o.Label("W32.Rahack", fmt.Sprintf("md5-%d", i))
		switch {
		case got == "":
			undetected++
		case strings.HasPrefix(got, "W32.Rahack"):
			family++
		default:
			generic++
		}
	}
	if f := float64(undetected) / n; f < 0.07 || f > 0.13 {
		t.Errorf("undetected rate = %.3f, want ~0.10", f)
	}
	if f := float64(generic) / n; f < 0.15 || f > 0.25 {
		t.Errorf("generic rate = %.3f, want ~0.20", f)
	}
	if family == 0 {
		t.Error("no family labels at all")
	}
}

func TestLabelNoFamilyName(t *testing.T) {
	o := New(0, 0)
	got := o.Label("", "md5-x")
	if got == "" {
		t.Error("unknown family must still produce a generic label")
	}
	if strings.Contains(got, ".") && strings.HasPrefix(got, "W32.Rahack") {
		t.Errorf("label = %q", got)
	}
}
