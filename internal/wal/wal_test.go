package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultfs"
)

func testOptions(t *testing.T) Options {
	t.Helper()
	return Options{Dir: t.TempDir(), NoSync: true}
}

func mustAppend(t *testing.T, l *Log, payload string) uint64 {
	t.Helper()
	seq, err := l.Append([]byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func collect(t *testing.T, l *Log, from uint64) map[uint64]string {
	t.Helper()
	out := map[uint64]string{}
	if err := l.Replay(from, func(seq uint64, payload []byte) error {
		out[seq] = string(payload)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	opts := testOptions(t)
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if seq := mustAppend(t, l, fmt.Sprintf("rec-%d", i)); seq != uint64(i) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if l.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", l.LastSeq())
	}
	got := collect(t, l, 0)
	if len(got) != 5 || got[3] != "rec-3" {
		t.Fatalf("replay: %v", got)
	}
	if got := collect(t, l, 4); len(got) != 2 || got[4] != "rec-4" || got[5] != "rec-5" {
		t.Fatalf("replay from 4: %v", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen resumes the sequence where it stopped.
	l2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 5 {
		t.Fatalf("reopened LastSeq = %d, want 5", l2.LastSeq())
	}
	if seq := mustAppend(t, l2, "rec-6"); seq != 6 {
		t.Fatalf("append after reopen got seq %d, want 6", seq)
	}
	if got := collect(t, l2, 0); len(got) != 6 {
		t.Fatalf("replay after reopen: %v", got)
	}
}

func TestRotationAndTruncateBefore(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentBytes = 1 // rotate on every append after the first
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 6; i++ {
		mustAppend(t, l, fmt.Sprintf("rec-%d", i))
	}
	if n := countSegments(t, opts.Dir); n != 6 {
		t.Fatalf("%d segments, want 6", n)
	}
	if err := l.TruncateBefore(4); err != nil {
		t.Fatal(err)
	}
	if n := countSegments(t, opts.Dir); n != 3 {
		t.Fatalf("%d segments after TruncateBefore(4), want 3", n)
	}
	if got := collect(t, l, 0); len(got) != 3 || got[4] != "rec-4" {
		t.Fatalf("replay after truncate: %v", got)
	}
	// The newest segment always survives, so the sequence continues.
	if err := l.TruncateBefore(100); err != nil {
		t.Fatal(err)
	}
	if n := countSegments(t, opts.Dir); n != 1 {
		t.Fatalf("%d segments after TruncateBefore(100), want 1", n)
	}
	if seq := mustAppend(t, l, "rec-7"); seq != 7 {
		t.Fatalf("append after truncate-all got seq %d, want 7", seq)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	opts := testOptions(t)
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "intact-1")
	mustAppend(t, l, "intact-2")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append half a frame to the only segment.
	path := onlySegment(t, opts.Dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 42, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(opts)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer l2.Close()
	if got := collect(t, l2, 0); len(got) != 2 || got[2] != "intact-2" {
		t.Fatalf("replay after repair: %v", got)
	}
	if seq := mustAppend(t, l2, "intact-3"); seq != 3 {
		t.Fatalf("append after repair got seq %d, want 3", seq)
	}
	if got := collect(t, l2, 0); len(got) != 3 {
		t.Fatalf("replay after repaired append: %v", got)
	}
}

func TestCorruptRecordTruncatedOnOpen(t *testing.T) {
	opts := testOptions(t)
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "intact")
	seq2 := mustAppend(t, l, "to-corrupt")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second record; its CRC now fails, so
	// Open must drop it (and would drop anything after it).
	path := onlySegment(t, opts.Dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec1 := headerSize + len("intact")
	data[rec1+headerSize] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(opts)
	if err != nil {
		t.Fatalf("open with corrupt tail record: %v", err)
	}
	defer l2.Close()
	if l2.LastSeq() != seq2-1 {
		t.Fatalf("LastSeq = %d after repair, want %d", l2.LastSeq(), seq2-1)
	}
	if got := collect(t, l2, 0); len(got) != 1 || got[1] != "intact" {
		t.Fatalf("replay after repair: %v", got)
	}
}

func TestCorruptionInSealedSegmentIsFatal(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentBytes = 1
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "sealed")
	mustAppend(t, l, "newest")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the sealed (non-newest) segment: that is data loss the log
	// cannot repair, so Open must refuse rather than silently skip.
	path := filepath.Join(opts.Dir, fmt.Sprintf("%020d.wal", 1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(opts); err == nil {
		t.Fatal("Open must fail on a corrupt sealed segment")
	}
}

func TestSeqGapIsFatal(t *testing.T) {
	opts := testOptions(t)
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "one")
	mustAppend(t, l, "two")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Rewrite record 2's seq to 7 (with a matching CRC): contiguity is
	// broken, and the repair policy is truncation at the gap.
	path := onlySegment(t, opts.Dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := headerSize + len("one")
	binary.BigEndian.PutUint64(data[off+8:off+16], 7)
	// Recompute the CRC so only the seq is wrong.
	crc := crc32.ChecksumIEEE(data[off+8 : off+16+len("two")])
	binary.BigEndian.PutUint32(data[off+4:off+8], crc)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(opts)
	if err != nil {
		t.Fatalf("open with seq gap in tail: %v", err)
	}
	defer l2.Close()
	if got := collect(t, l2, 0); len(got) != 1 {
		t.Fatalf("replay after gap repair: %v", got)
	}
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	segs, err := listSegments(faultfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(segs)
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(faultfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("%d segments, want 1", len(segs))
	}
	return filepath.Join(dir, fmt.Sprintf("%020d.wal", segs[0]))
}
