package wal

// Shipping surface of the WAL: sealed-segment enumeration, frame-level
// readers, and read-only verification. This is what log shipping
// (internal/replica) builds on — the primary enumerates and streams
// segments without disturbing the appender, a follower parses the
// shipped frame stream with the same CRC and contiguity checks local
// replay runs, and the operator verifies a directory without
// triggering Open's tail repair.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/faultfs"
)

// SegmentInfo describes one on-disk segment for the shipping manifest.
type SegmentInfo struct {
	// FirstSeq names the segment: the seq of its first record.
	FirstSeq uint64 `json:"first_seq"`
	// LastSeq is the newest complete record; LastSeq < FirstSeq marks a
	// segment that holds no complete records yet.
	LastSeq uint64 `json:"last_seq"`
	// Bytes counts the complete-frame bytes a reader may ship. For the
	// active segment this excludes any in-flight append.
	Bytes int64 `json:"bytes"`
	// Sealed marks segments that will never grow again.
	Sealed bool `json:"sealed"`
}

// Segments enumerates the on-disk segments, oldest first, in one
// consistent snapshot: a sealed segment's range is final, and the
// active segment's LastSeq/Bytes cover exactly the records whose
// writes had completed when the snapshot was taken.
func (l *Log) Segments() ([]SegmentInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	out := make([]SegmentInfo, 0, len(l.segs))
	for i, first := range l.segs {
		info := SegmentInfo{FirstSeq: first}
		if i+1 < len(l.segs) {
			info.Sealed = true
			info.LastSeq = l.segs[i+1] - 1
			fi, err := l.fs.Stat(l.segmentPath(first))
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			info.Bytes = fi.Size()
		} else {
			// Active tail: l.last and l.size advance together under the
			// lock, only after a frame is fully written.
			info.LastSeq = l.last
			info.Bytes = l.size
		}
		out = append(out, info)
	}
	return out, nil
}

// ErrSegmentGone reports that the requested segment is no longer on
// disk — typically garbage-collected by TruncateBefore after a
// checkpoint. Shipping clients re-bootstrap from the newest checkpoint
// when they see it.
var ErrSegmentGone = errors.New("wal: segment gone")

// SegmentReader iterates one segment's verified frames.
type SegmentReader struct {
	f    faultfs.File
	fr   *FrameReader
	from uint64
	path string
}

// OpenSegment opens the segment whose first record is firstSeq for
// frame-level reading; Next skips records with seq < from. The file is
// opened under the log lock, so a concurrent TruncateBefore either
// happens first (ErrSegmentGone) or unlinks a file this reader already
// holds open — the read then still completes against the intact
// contents. Reads of the active segment stop at the bytes that were
// fully appended at open time; a concurrent append is never surfaced
// half-written.
func (l *Log) OpenSegment(firstSeq, from uint64) (*SegmentReader, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	idx := -1
	for i, s := range l.segs {
		if s == firstSeq {
			idx = i
			break
		}
	}
	if idx < 0 {
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: %020d", ErrSegmentGone, firstSeq)
	}
	path := l.segmentPath(firstSeq)
	f, err := l.fs.Open(path)
	if err != nil {
		l.mu.Unlock()
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %020d", ErrSegmentGone, firstSeq)
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var limit int64
	if idx == len(l.segs)-1 {
		limit = l.size
	} else {
		fi, serr := f.Stat()
		if serr != nil {
			l.mu.Unlock()
			f.Close()
			return nil, fmt.Errorf("wal: %w", serr)
		}
		limit = fi.Size()
	}
	l.mu.Unlock()

	return &SegmentReader{
		f:    f,
		fr:   NewFrameReader(io.LimitReader(f, limit), firstSeq),
		from: from,
		path: path,
	}, nil
}

// Next returns the next verified frame at or past the reader's from
// seq. io.EOF reports a clean end at a frame boundary; any other error
// is a *CorruptError carrying the segment path.
func (r *SegmentReader) Next() (uint64, []byte, error) {
	for {
		seq, payload, err := r.fr.Next()
		if err != nil {
			var ce *CorruptError
			if errors.As(err, &ce) {
				ce.Path = r.path
			}
			return 0, nil, err
		}
		if seq < r.from {
			continue
		}
		return seq, payload, nil
	}
}

// Close releases the underlying file.
func (r *SegmentReader) Close() error { return r.f.Close() }

// CorruptError reports a torn or corrupt frame in a shipped stream or
// a segment file.
type CorruptError struct {
	// Path names the segment when the stream came from one.
	Path string
	// Offset is the byte offset of the offending frame.
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("wal: %s: %s at offset %d", e.Path, e.Reason, e.Offset)
	}
	return fmt.Sprintf("wal: %s at offset %d", e.Reason, e.Offset)
}

// FrameReader parses a WAL frame stream from any reader — a segment
// file or an HTTP body carrying shipped frames — verifying each
// frame's CRC and the seq contiguity, so corruption cannot cross a
// shipping hop undetected.
type FrameReader struct {
	r      *bufio.Reader
	expect uint64 // next required seq; 0 accepts any first frame
	off    int64
}

// NewFrameReader wraps r; expect is the seq the first frame must carry
// (0 accepts whatever comes first, then enforces contiguity).
func NewFrameReader(r io.Reader, expect uint64) *FrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<20)
	}
	return &FrameReader{r: br, expect: expect}
}

// Next returns the next verified frame. io.EOF reports a clean end at
// a frame boundary; any other error is a *CorruptError.
func (fr *FrameReader) Next() (uint64, []byte, error) {
	var header [headerSize]byte
	if _, err := io.ReadFull(fr.r, header[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fr.corrupt("torn frame header")
	}
	length := binary.BigEndian.Uint32(header[0:4])
	if length < 8 || int64(length) > maxRecordBytes {
		return 0, nil, fr.corrupt(fmt.Sprintf("implausible frame length %d", length))
	}
	payload := make([]byte, length-8)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return 0, nil, fr.corrupt("torn frame payload")
	}
	crc := crc32.ChecksumIEEE(header[8:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != binary.BigEndian.Uint32(header[4:8]) {
		return 0, nil, fr.corrupt("crc mismatch")
	}
	seq := binary.BigEndian.Uint64(header[8:16])
	if fr.expect != 0 && seq != fr.expect {
		return 0, nil, fr.corrupt(fmt.Sprintf("record seq %d, want %d", seq, fr.expect))
	}
	fr.expect = seq + 1
	fr.off += int64(headerSize) + int64(len(payload))
	return seq, payload, nil
}

func (fr *FrameReader) corrupt(reason string) error {
	return &CorruptError{Offset: fr.off, Reason: reason}
}

// EncodeFrame frames one record for the log or the wire. The shipping
// endpoint re-frames records it has verified from disk, so every hop
// re-checks the CRC end to end.
func EncodeFrame(seq uint64, payload []byte) []byte {
	frame := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(8+len(payload)))
	binary.BigEndian.PutUint64(frame[8:16], seq)
	copy(frame[16:], payload)
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[8:]))
	return frame
}

// VerifyError reports the first integrity violation VerifyDir found.
type VerifyError struct {
	// Path names the offending segment.
	Path string
	// Repairable marks a torn tail on the newest segment — the one
	// shape Open repairs automatically on the next start; anything else
	// is real corruption.
	Repairable bool
	Err        error
}

func (e *VerifyError) Error() string {
	kind := "corrupt segment"
	if e.Repairable {
		kind = "torn tail (repairable on next open)"
	}
	return fmt.Sprintf("wal: %s: %s: %v", e.Path, kind, e.Err)
}

func (e *VerifyError) Unwrap() error { return e.Err }

// VerifyDir walks every segment in dir read-only, validating frame
// CRCs and cross-segment seq contiguity, and returns the segment and
// record counts. Unlike Open it repairs nothing, so it is safe to run
// against a directory another process is about to recover from. The
// first violation is returned as a *VerifyError naming the segment.
func VerifyDir(dir string) (segments, records int, err error) {
	fs := faultfs.OS
	segs, err := listSegments(fs, dir)
	if err != nil {
		return 0, 0, err
	}
	var last uint64
	for i, first := range segs {
		path := segmentFile(dir, first)
		tail := i == len(segs)-1
		lastSeq, _, n, serr := scanSegment(fs, path, first, 0, nil)
		if serr != nil {
			return segments, records, &VerifyError{Path: path, Repairable: tail, Err: serr}
		}
		if n == 0 && !tail {
			return segments, records, &VerifyError{Path: path, Err: errors.New("empty segment is not the newest")}
		}
		if n > 0 {
			if last != 0 && first != last+1 {
				return segments, records, &VerifyError{Path: path, Err: fmt.Errorf("segment does not continue seq %d", last)}
			}
			last = lastSeq
		}
		segments++
		records += n
	}
	return segments, records, nil
}
