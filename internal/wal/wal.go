// Package wal implements the service's write-ahead log: a segmented,
// append-only record log with per-record CRC framing, used by the
// streaming landscape service to make accepted batches durable before
// they are applied.
//
// On-disk layout: the directory holds segments named by the sequence
// number of their first record (`%020d.wal`). Each record is framed as
//
//	[u32 length][u32 crc][u64 seq][payload]
//
// where length = 8 + len(payload) and the CRC (IEEE) covers seq and
// payload. A crash can tear only the tail of the last segment; Open
// detects the torn frame (short frame or CRC mismatch) and truncates
// the file back to the last intact record. Corruption anywhere else is
// unrecoverable and reported as an error.
//
// Sequence numbers start at 1 and are strictly contiguous across
// segments. TruncateBefore removes sealed segments that a checkpoint
// has made redundant; the newest segment is always retained so the
// sequence never restarts.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/faultfs"
)

const (
	headerSize          = 16      // u32 length + u32 crc + u64 seq
	defaultSegmentBytes = 8 << 20 // rotation threshold
	maxRecordBytes      = 256 << 20
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options parameterize a log.
type Options struct {
	// Dir is the segment directory; it is created if missing.
	Dir string
	// SegmentBytes is the rotation threshold; once the active segment
	// reaches it, the next append opens a new segment. 0 selects 8 MiB.
	SegmentBytes int64
	// NoSync skips the per-append fsync and the directory syncs. Appends
	// then survive process crashes (the OS holds the pages) but not
	// machine crashes; tests and benchmarks use it.
	NoSync bool
	// FS overrides the filesystem; nil selects the os passthrough. The
	// chaos harness injects seeded disk faults through it.
	FS faultfs.FS
}

// Log is an append-only record log. It is safe for concurrent use,
// though the streaming service serializes all writes on its worker.
type Log struct {
	mu     sync.Mutex
	opts   Options
	fs     faultfs.FS
	active faultfs.File
	size   int64    // bytes in the active segment
	segs   []uint64 // first-seq of every segment on disk, ascending
	last   uint64   // seq of the last appended record; 0 when empty
	broken bool     // a partial write poisoned the tail
	closed bool
}

// Open opens (or creates) the log in opts.Dir, validating every segment
// and repairing a torn tail on the newest one.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: empty directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	fs := faultfs.OrOS(opts.FS)
	if err := fs.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(fs, opts.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{opts: opts, fs: fs, segs: segs}
	for i, first := range segs {
		lastSeq, good, n, err := scanSegment(fs, l.segmentPath(first), first, 0, nil)
		tail := i == len(segs)-1
		if err != nil {
			if !tail {
				return nil, fmt.Errorf("wal: segment %020d: %w", first, err)
			}
			// Torn tail: drop the partial frame and anything after it, and
			// make the repair itself durable before appends resume — an
			// unsynced truncate could resurrect the torn bytes after a
			// crash and poison the next recovery.
			if terr := fs.Truncate(l.segmentPath(first), good); terr != nil {
				return nil, fmt.Errorf("wal: repairing segment %020d: %w", first, terr)
			}
			if !opts.NoSync {
				if serr := l.syncPath(l.segmentPath(first)); serr != nil {
					return nil, fmt.Errorf("wal: syncing repaired segment %020d: %w", first, serr)
				}
			}
		}
		if n == 0 && !tail {
			return nil, fmt.Errorf("wal: empty segment %020d is not the newest", first)
		}
		if n > 0 {
			if l.last != 0 && first != l.last+1 {
				return nil, fmt.Errorf("wal: segment %020d does not continue seq %d", first, l.last)
			}
			l.last = lastSeq
		}
		if tail {
			f, err := fs.OpenFile(l.segmentPath(first), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.active = f
			l.size = good
		}
	}
	return l, nil
}

// syncPath opens a path read-only and fsyncs it.
func (l *Log) syncPath(path string) error {
	f, err := l.fs.Open(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Append frames and writes one record, fsyncing unless NoSync, and
// returns its sequence number. After a failed write the log refuses
// further appends: the tail may be torn and only a re-Open repairs it.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.broken {
		return 0, fmt.Errorf("wal: log poisoned by an earlier failed write; reopen to repair")
	}
	if int64(len(payload)) > maxRecordBytes-8 {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the frame limit", len(payload))
	}
	seq := l.last + 1
	if l.active == nil || l.size >= l.opts.SegmentBytes {
		if err := l.rotate(seq); err != nil {
			return 0, err
		}
	}
	frame := EncodeFrame(seq, payload)
	if _, err := l.active.Write(frame); err != nil {
		l.broken = true
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.active.Sync(); err != nil {
			l.broken = true
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
	}
	l.size += int64(len(frame))
	l.last = seq
	return seq, nil
}

// Replay validates every record and calls fn, in order, for each record
// with seq >= from. fn errors abort the replay.
func (l *Log) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for _, first := range l.segs {
		if _, _, _, err := scanSegment(l.fs, l.segmentPath(first), first, from, fn); err != nil {
			return fmt.Errorf("wal: segment %020d: %w", first, err)
		}
	}
	return nil
}

// FirstSeq reports the first record sequence still on disk (0 when the
// log is empty) — the oldest point recovery can replay from. A fallback
// to an older checkpoint generation must check its coverage starts at
// or before this.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 || l.last == 0 {
		return 0
	}
	return l.segs[0]
}

// Sync fsyncs the active segment. The write-path self-heal uses it
// after a reopen finds the previously failed append fully on disk: the
// bytes are present but their durability is unproven until a sync
// succeeds.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.active == nil || l.opts.NoSync {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		l.broken = true
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// LastSeq reports the sequence number of the newest record (0 when the
// log has none).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// TruncateBefore removes sealed segments every record of which has
// seq < before — the garbage collection a checkpoint at before-1
// enables. The newest segment always survives, so the sequence counter
// persists even when the whole log is checkpointed.
func (l *Log) TruncateBefore(before uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	keep := 0
	for keep+1 < len(l.segs) && l.segs[keep+1] <= before {
		keep++
	}
	if keep == 0 {
		return nil
	}
	for _, first := range l.segs[:keep] {
		if err := l.fs.Remove(l.segmentPath(first)); err != nil {
			return fmt.Errorf("wal: removing segment %020d: %w", first, err)
		}
	}
	l.segs = append(l.segs[:0], l.segs[keep:]...)
	return l.syncDir()
}

// Close syncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active == nil {
		return nil
	}
	if !l.opts.NoSync && !l.broken {
		if err := l.active.Sync(); err != nil {
			l.active.Close()
			return fmt.Errorf("wal: sync on close: %w", err)
		}
	}
	return l.active.Close()
}

// rotate seals the active segment and opens a fresh one whose name is
// the seq about to be written.
func (l *Log) rotate(firstSeq uint64) error {
	if l.active != nil {
		if !l.opts.NoSync {
			if err := l.active.Sync(); err != nil {
				return fmt.Errorf("wal: sealing segment: %w", err)
			}
		}
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		l.active = nil
	}
	f, err := l.fs.OpenFile(l.segmentPath(firstSeq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: new segment: %w", err)
	}
	l.active = f
	l.size = 0
	l.segs = append(l.segs, firstSeq)
	return l.syncDir()
}

// syncDir fsyncs the directory so segment creation/removal is durable.
func (l *Log) syncDir() error {
	if l.opts.NoSync {
		return nil
	}
	d, err := l.fs.Open(l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing directory: %w", err)
	}
	return nil
}

func (l *Log) segmentPath(firstSeq uint64) string {
	return segmentFile(l.opts.Dir, firstSeq)
}

func segmentFile(dir string, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d.wal", firstSeq))
}

// listSegments returns the first-seqs of the directory's segments,
// ascending.
func listSegments(fs faultfs.FS, dir string) ([]uint64, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".wal") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: segment name %q is not a sequence number", name)
		}
		segs = append(segs, seq)
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	return segs, nil
}

// scanSegment reads one segment, validating frame integrity and seq
// contiguity, and calls fn (when non-nil) for every record with
// seq >= from. It returns the last seq read, the byte offset of the end
// of the last intact record, and the record count; a torn or corrupt
// frame is reported as an error with good set to the repair offset.
func scanSegment(fs faultfs.FS, path string, firstSeq, from uint64, fn func(uint64, []byte) error) (last uint64, good int64, n int, err error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	expect := firstSeq
	var header [headerSize]byte
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			if err == io.EOF {
				return last, good, n, nil
			}
			return last, good, n, fmt.Errorf("torn frame header at offset %d", good)
		}
		length := binary.BigEndian.Uint32(header[0:4])
		if length < 8 || int64(length) > maxRecordBytes {
			return last, good, n, fmt.Errorf("implausible frame length %d at offset %d", length, good)
		}
		payload := make([]byte, length-8)
		if _, err := io.ReadFull(br, payload); err != nil {
			return last, good, n, fmt.Errorf("torn frame payload at offset %d", good)
		}
		crc := crc32.ChecksumIEEE(header[8:])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != binary.BigEndian.Uint32(header[4:8]) {
			return last, good, n, fmt.Errorf("crc mismatch at offset %d", good)
		}
		seq := binary.BigEndian.Uint64(header[8:16])
		if seq != expect {
			return last, good, n, fmt.Errorf("record seq %d at offset %d, want %d", seq, good, expect)
		}
		if fn != nil && seq >= from {
			if err := fn(seq, payload); err != nil {
				return last, good, n, err
			}
		}
		last = seq
		expect = seq + 1
		good += int64(headerSize + len(payload))
		n++
	}
}
