package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"testing"
)

func TestSegmentsSnapshot(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentBytes = 1 // one record per segment
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 3; i++ {
		mustAppend(t, l, fmt.Sprintf("rec-%d", i))
	}
	segs, err := l.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("%d segments, want 3", len(segs))
	}
	for i, s := range segs {
		first := uint64(i + 1)
		if s.FirstSeq != first || s.LastSeq != first {
			t.Fatalf("segment %d range [%d,%d], want [%d,%d]", i, s.FirstSeq, s.LastSeq, first, first)
		}
		wantBytes := int64(headerSize + len(fmt.Sprintf("rec-%d", first)))
		if s.Bytes != wantBytes {
			t.Fatalf("segment %d bytes %d, want %d", i, s.Bytes, wantBytes)
		}
		if sealed := i < 2; s.Sealed != sealed {
			t.Fatalf("segment %d sealed=%v, want %v", i, s.Sealed, sealed)
		}
	}
}

func TestSegmentReaderRoundTrip(t *testing.T) {
	opts := testOptions(t)
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 5; i++ {
		mustAppend(t, l, fmt.Sprintf("rec-%d", i))
	}
	sr, err := l.OpenSegment(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	// The reader's limit was snapshotted at open; a concurrent append
	// must stay invisible rather than surface a possibly-torn frame.
	mustAppend(t, l, "rec-6")
	var got []uint64
	for {
		seq, payload, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("rec-%d", seq); string(payload) != want {
			t.Fatalf("seq %d payload %q, want %q", seq, payload, want)
		}
		got = append(got, seq)
	}
	if len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("read seqs %v, want [3 4 5]", got)
	}
	if _, err := l.OpenSegment(99, 99); !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("OpenSegment(99) err = %v, want ErrSegmentGone", err)
	}
}

// TestTruncateBeforeRacingReader pins the shipping-side GC contract: a
// reader that raced TruncateBefore either completes its read against
// the intact (possibly unlinked) file or fails cleanly with
// ErrSegmentGone — it never surfaces a torn or corrupt frame as data.
func TestTruncateBeforeRacingReader(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentBytes = 1 // one record per segment
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const total = 40
	for i := 1; i <= total; i++ {
		mustAppend(t, l, fmt.Sprintf("rec-%02d", i))
	}
	start := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for first := uint64(1); first <= total; first++ {
				sr, err := l.OpenSegment(first, 0)
				if errors.Is(err, ErrSegmentGone) {
					continue
				}
				if err != nil {
					errs <- err
					return
				}
				want := first
				for {
					seq, payload, err := sr.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						errs <- fmt.Errorf("segment %d: %v", first, err)
						sr.Close()
						return
					}
					if seq != want || string(payload) != fmt.Sprintf("rec-%02d", seq) {
						errs <- fmt.Errorf("segment %d: got seq %d payload %q", first, seq, payload)
						sr.Close()
						return
					}
					want++
				}
				sr.Close()
			}
		}()
	}
	close(start)
	for cut := uint64(2); cut <= total; cut++ {
		if err := l.TruncateBefore(cut); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestFrameReaderVerifies(t *testing.T) {
	frame := func(seq uint64, payload string) []byte { return EncodeFrame(seq, []byte(payload)) }
	read := func(stream []byte, expect uint64) (seqs []uint64, err error) {
		fr := NewFrameReader(bytes.NewReader(stream), expect)
		for {
			seq, _, rerr := fr.Next()
			if rerr == io.EOF {
				return seqs, nil
			}
			if rerr != nil {
				return seqs, rerr
			}
			seqs = append(seqs, seq)
		}
	}

	clean := append(frame(5, "a"), frame(6, "bb")...)
	if seqs, err := read(clean, 5); err != nil || len(seqs) != 2 || seqs[1] != 6 {
		t.Fatalf("clean stream: seqs %v err %v", seqs, err)
	}

	var ce *CorruptError
	flipped := append([]byte(nil), clean...)
	flipped[headerSize] ^= 0xff
	if _, err := read(flipped, 5); !errors.As(err, &ce) {
		t.Fatalf("corrupt payload: err = %v, want CorruptError", err)
	}

	gap := append(frame(5, "a"), frame(9, "bb")...)
	if _, err := read(gap, 5); !errors.As(err, &ce) {
		t.Fatalf("seq gap: err = %v, want CorruptError", err)
	}

	if _, err := read(clean, 7); !errors.As(err, &ce) {
		t.Fatalf("wrong first seq: err = %v, want CorruptError", err)
	}

	torn := clean[:len(clean)-1]
	if _, err := read(torn, 5); !errors.As(err, &ce) {
		t.Fatalf("torn tail: err = %v, want CorruptError", err)
	}
	// Truncation inside the second frame's header: the first record is
	// delivered, the partial one is an error, never data.
	if seqs, err := read(clean[:headerSize+1+len("a")+4], 5); !errors.As(err, &ce) || len(seqs) != 1 {
		t.Fatalf("mid-header truncation: seqs %v err %v, want [5] + CorruptError", seqs, err)
	}
}

func TestVerifyDir(t *testing.T) {
	build := func(t *testing.T) Options {
		opts := testOptions(t)
		opts.SegmentBytes = 1
		l, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 3; i++ {
			mustAppend(t, l, fmt.Sprintf("rec-%d", i))
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return opts
	}

	t.Run("clean", func(t *testing.T) {
		opts := build(t)
		segs, recs, err := VerifyDir(opts.Dir)
		if err != nil || segs != 3 || recs != 3 {
			t.Fatalf("VerifyDir = (%d, %d, %v), want (3, 3, nil)", segs, recs, err)
		}
	})

	t.Run("corrupt sealed segment", func(t *testing.T) {
		opts := build(t)
		path := segmentFile(opts.Dir, 1)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[headerSize] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err = VerifyDir(opts.Dir)
		var ve *VerifyError
		if !errors.As(err, &ve) || ve.Path != path || ve.Repairable {
			t.Fatalf("VerifyDir err = %v, want non-repairable VerifyError at %s", err, path)
		}
	})

	t.Run("torn newest tail is repairable", func(t *testing.T) {
		opts := build(t)
		path := segmentFile(opts.Dir, 3)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0, 0, 0, 42, 1}); err != nil {
			t.Fatal(err)
		}
		f.Close()
		_, _, err = VerifyDir(opts.Dir)
		var ve *VerifyError
		if !errors.As(err, &ve) || ve.Path != path || !ve.Repairable {
			t.Fatalf("VerifyDir err = %v, want repairable VerifyError at %s", err, path)
		}
	})
}
