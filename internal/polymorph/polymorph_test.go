package polymorph

import (
	"bytes"
	"testing"

	"repro/internal/netmodel"
	"repro/internal/pe"
	"repro/internal/simrng"
)

func template() *pe.Image {
	return &pe.Image{
		Machine:     pe.MachineI386,
		Subsystem:   pe.SubsystemGUI,
		LinkerMajor: 9,
		LinkerMinor: 2,
		OSMajor:     6,
		OSMinor:     4,
		Sections: []pe.Section{
			{Name: ".text", Data: bytes.Repeat([]byte{0x90}, 8192), Characteristics: pe.SectionCode | pe.SectionExecute | pe.SectionRead},
			{Name: ".data", Data: bytes.Repeat([]byte{0x22}, 4096), Characteristics: pe.SectionInitializedData | pe.SectionRead | pe.SectionWrite},
		},
		Imports: []pe.Import{
			{DLL: "KERNEL32.dll", Symbols: []string{"GetProcAddress", "LoadLibraryA"}},
		},
	}
}

func mustMutate(t *testing.T, e Engine, img *pe.Image, ctx Context) []byte {
	t.Helper()
	data, err := e.Mutate(img, ctx)
	if err != nil {
		t.Fatalf("%s.Mutate: %v", e.Name(), err)
	}
	return data
}

func TestNoneIsStable(t *testing.T) {
	img := template()
	e := None{}
	a := mustMutate(t, e, img, Context{Source: 1, Instance: 1})
	b := mustMutate(t, e, img, Context{Source: 2, Instance: 99})
	if !bytes.Equal(a, b) {
		t.Error("None engine must produce identical bytes for all instances")
	}
}

func TestAllapleMutatesEveryInstance(t *testing.T) {
	img := template()
	e := Allaple{Seed: 5}
	a := mustMutate(t, e, img, Context{Source: 1, Instance: 1})
	b := mustMutate(t, e, img, Context{Source: 1, Instance: 2})
	if bytes.Equal(a, b) {
		t.Error("Allaple must mutate between instances")
	}
	fa, fb := pe.ExtractFeatures(a), pe.ExtractFeatures(b)
	if fa.MD5 == fb.MD5 {
		t.Error("MD5 must differ between instances")
	}
	// All header invariants must be preserved (the paper's key observation).
	if fa.Size != fb.Size {
		t.Errorf("size changed: %d -> %d", fa.Size, fb.Size)
	}
	if fa.SectionNames != fb.SectionNames {
		t.Errorf("section names changed: %q -> %q", fa.SectionNames, fb.SectionNames)
	}
	if fa.LinkerVersion != fb.LinkerVersion || fa.NumSections != fb.NumSections {
		t.Error("header facts changed under Allaple mutation")
	}
	if fa.Kernel32Symbols != fb.Kernel32Symbols {
		t.Error("import table changed under Allaple mutation")
	}
	if fa.Magic != pe.MagicPEGUI || fb.Magic != pe.MagicPEGUI {
		t.Errorf("magic broke: %q / %q", fa.Magic, fb.Magic)
	}
}

func TestAllapleDeterministicPerInstance(t *testing.T) {
	img := template()
	e := Allaple{Seed: 5}
	ctx := Context{Source: 42, Instance: 17}
	a := mustMutate(t, e, img, ctx)
	b := mustMutate(t, e, img, ctx)
	if !bytes.Equal(a, b) {
		t.Error("same (engine, template, context) must reproduce identical bytes")
	}
}

func TestPerSourceKeysOnAttacker(t *testing.T) {
	img := template()
	e := PerSource{Seed: 9}
	src := netmodel.MustParseIP("203.0.113.7")
	other := netmodel.MustParseIP("198.51.100.3")

	a1 := mustMutate(t, e, img, Context{Source: src, Instance: 1})
	a2 := mustMutate(t, e, img, Context{Source: src, Instance: 2})
	b1 := mustMutate(t, e, img, Context{Source: other, Instance: 3})

	if !bytes.Equal(a1, a2) {
		t.Error("same source must ship identical bytes across instances")
	}
	if bytes.Equal(a1, b1) {
		t.Error("different sources must ship different bytes")
	}
	fa, fb := pe.ExtractFeatures(a1), pe.ExtractFeatures(b1)
	if fa.MD5 == fb.MD5 {
		t.Error("different sources must yield different MD5s")
	}
	if fa.Size != fb.Size || fa.SectionNames != fb.SectionNames {
		t.Error("per-source engine must preserve size and section names")
	}
}

func TestEnginesDifferAcrossSeeds(t *testing.T) {
	img := template()
	ctx := Context{Source: 1, Instance: 1}
	a := mustMutate(t, Allaple{Seed: 1}, img, ctx)
	b := mustMutate(t, Allaple{Seed: 2}, img, ctx)
	if bytes.Equal(a, b) {
		t.Error("different family seeds must decorrelate mutations")
	}
}

func TestMutateDoesNotTouchTemplate(t *testing.T) {
	img := template()
	orig := append([]byte(nil), img.Sections[0].Data...)
	if _, err := (Allaple{Seed: 3}).Mutate(img, Context{Instance: 1}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img.Sections[0].Data, orig) {
		t.Error("Mutate must not modify the template in place")
	}
}

func TestPatchChangesSizeOnly(t *testing.T) {
	r := simrng.New(1).Stream("patch")
	parent := template()
	parentRaw, err := parent.Build()
	if err != nil {
		t.Fatal(err)
	}
	pf := pe.ExtractFeatures(parentRaw)
	for i := 0; i < 20; i++ {
		child := Patch(parent, r)
		raw, err := child.Build()
		if err != nil {
			t.Fatal(err)
		}
		cf := pe.ExtractFeatures(raw)
		if cf.Size == pf.Size {
			t.Errorf("trial %d: Patch did not change file size", i)
		}
		if cf.SectionNames != pf.SectionNames {
			t.Errorf("trial %d: Patch changed section names", i)
		}
		if cf.LinkerVersion != pf.LinkerVersion {
			t.Errorf("trial %d: Patch changed linker version", i)
		}
	}
}

func TestRecompileChangesLinker(t *testing.T) {
	r := simrng.New(2).Stream("recompile")
	parent := template()
	for i := 0; i < 20; i++ {
		child := Recompile(parent, r)
		if child.LinkerMajor == parent.LinkerMajor && child.LinkerMinor == parent.LinkerMinor {
			t.Fatalf("trial %d: Recompile kept linker version %d.%d", i, child.LinkerMajor, child.LinkerMinor)
		}
		if _, err := child.Build(); err != nil {
			t.Fatalf("trial %d: recompiled image invalid: %v", i, err)
		}
	}
}

func TestRepackCollapsesSections(t *testing.T) {
	r := simrng.New(3).Stream("repack")
	child := Repack(template(), r)
	names := child.SectionNames()
	if len(child.Sections) != 2 || names[0] != "UPX0" || names[1] != "UPX1" {
		t.Fatalf("Repack sections = %v", names)
	}
	raw, err := child.Build()
	if err != nil {
		t.Fatal(err)
	}
	ft := pe.ExtractFeatures(raw)
	if !ft.IsPE {
		t.Error("repacked image must stay a valid PE")
	}
	if ft.Kernel32Symbols != "GetProcAddress,LoadLibraryA,VirtualAlloc" {
		t.Errorf("repacked imports = %q", ft.Kernel32Symbols)
	}
}

func TestAddImport(t *testing.T) {
	r := simrng.New(4).Stream("addimport")
	op := AddImport("KERNEL32.dll", "CreateMutexA")
	child := op(template(), r)
	syms := child.SymbolsOf("KERNEL32.dll")
	if len(syms) != 3 {
		t.Fatalf("symbols = %v", syms)
	}
	// Idempotent: adding the same symbol twice is a no-op.
	child2 := op(child, r)
	if got := len(child2.SymbolsOf("KERNEL32.dll")); got != 3 {
		t.Errorf("second AddImport grew symbols to %d", got)
	}
	// New DLL path.
	child3 := AddImport("WS2_32.dll", "socket")(template(), r)
	if got := child3.SymbolsOf("WS2_32.dll"); len(got) != 1 || got[0] != "socket" {
		t.Errorf("new dll symbols = %v", got)
	}
}

func TestEngineFor(t *testing.T) {
	for _, name := range []string{"none", "", "allaple", "per-source"} {
		e, err := EngineFor(name, 7)
		if err != nil {
			t.Errorf("EngineFor(%q): %v", name, err)
		}
		if e == nil {
			t.Errorf("EngineFor(%q) = nil", name)
		}
	}
	if _, err := EngineFor("quantum", 7); err == nil {
		t.Error("unknown engine must error")
	}
}

func BenchmarkAllapleMutate(b *testing.B) {
	img := template()
	e := Allaple{Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Mutate(img, Context{Instance: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
