// Package polymorph implements the polymorphic engines and variant
// derivation operators observed in the paper's corpus.
//
// Two distinct kinds of mutation matter for the reproduction:
//
//   - Per-instance engines mutate the bytes of a sample at every
//     propagation attempt. The paper observes two sophistication levels:
//     Allaple-class engines randomize code/data content at each attack
//     while preserving the file size and all PE header structure, and a
//     subtler per-source engine (M-cluster 13) whose output depends on the
//     attacker's IP address — the same attacker always ships the same MD5.
//
//   - Variant operators derive a new codebase from a parent: patches
//     (content and size changes), recompilation (linker version changes),
//     and repacking (section layout changes). These create new M-clusters
//     in the EPM space while typically preserving behaviour.
package polymorph

import (
	"fmt"
	"math/rand"

	"repro/internal/netmodel"
	"repro/internal/pe"
	"repro/internal/simrng"
)

// Context carries the attack-instance facts an engine may key on.
type Context struct {
	// Source is the attacking host shipping this instance.
	Source netmodel.IP
	// Instance is a unique, monotonically increasing attack identifier.
	Instance uint64
}

// Engine mutates a family template into the concrete bytes shipped during
// one code-injection attack.
type Engine interface {
	// Name identifies the engine in ground-truth records.
	Name() string
	// Mutate produces the instance bytes for the given template and attack
	// context. Implementations must be deterministic functions of
	// (template, context, own seed).
	Mutate(template *pe.Image, ctx Context) ([]byte, error)
}

// Compile-time interface compliance checks.
var (
	_ Engine = (*None)(nil)
	_ Engine = (*Allaple)(nil)
	_ Engine = (*PerSource)(nil)
)

// None ships the template unchanged: every instance has the same MD5,
// which EPM then discovers as an invariant feature.
type None struct{}

// Name implements Engine.
func (None) Name() string { return "none" }

// Mutate implements Engine.
func (None) Mutate(template *pe.Image, _ Context) ([]byte, error) {
	return template.Build()
}

// Allaple models the Allaple/Rahack-class engine: every instance gets
// fresh section content of identical size, leaving every PE header fact
// (machine, versions, section names and counts, imports) invariant.
type Allaple struct {
	// Seed decorrelates engines of different families.
	Seed uint64
}

// Name implements Engine.
func (Allaple) Name() string { return "allaple" }

// Mutate implements Engine.
func (a Allaple) Mutate(template *pe.Image, ctx Context) ([]byte, error) {
	key := a.Seed ^ ctx.Instance*0x9e3779b97f4a7c15
	return mutateContent(template, key)
}

// PerSource models the engine of the paper's M-cluster 13: the mutation is
// keyed by the attacker address, so one source ships one MD5 across all of
// its attacks while different sources ship different MD5s. This interacts
// with EPM invariant discovery exactly as in the paper: the MD5 never
// reaches the "three distinct attackers" threshold and is therefore not
// selected as an invariant.
type PerSource struct {
	Seed uint64
}

// Name implements Engine.
func (PerSource) Name() string { return "per-source" }

// Mutate implements Engine.
func (p PerSource) Mutate(template *pe.Image, ctx Context) ([]byte, error) {
	key := p.Seed ^ uint64(ctx.Source)*0xbf58476d1ce4e5b9
	return mutateContent(template, key)
}

// mutateContent rewrites every section's content with key-derived bytes of
// identical length and rebuilds the image. Headers, section names, sizes,
// and the import table are untouched — the invariants the paper's static
// clustering relies on.
func mutateContent(template *pe.Image, key uint64) ([]byte, error) {
	img := template.Clone()
	r := rand.New(rand.NewSource(int64(key)))
	for i := range img.Sections {
		r.Read(img.Sections[i].Data)
	}
	img.TimeDateStamp = uint32(r.Uint64())
	return img.Build()
}

// VariantOp derives a new codebase image from a parent. The returned image
// is always a fresh deep copy.
type VariantOp func(parent *pe.Image, r *rand.Rand) *pe.Image

// Patch models a code patch: one or more sections change size (the
// dominant M-cluster differentiator for Allaple in the paper, which
// observes "a variety of M-clusters, all linked to the same B-clusters,
// but characterized by different binary sizes").
func Patch(parent *pe.Image, r *rand.Rand) *pe.Image {
	img := parent.Clone()
	idx := r.Intn(len(img.Sections))
	sec := &img.Sections[idx]
	// Grow or shrink by 0.5..8 KiB in 512-byte steps (the PE file
	// alignment), never below 64 bytes. Fine-grained deltas keep patched
	// variants distinguishable by file size, the paper's main M-cluster
	// differentiator for Allaple.
	delta := (r.Intn(16) + 1) * 512
	if r.Intn(2) == 0 && len(sec.Data) > delta+64 {
		sec.Data = sec.Data[:len(sec.Data)-delta]
	} else {
		grown := make([]byte, len(sec.Data)+delta)
		copy(grown, sec.Data)
		r.Read(grown[len(sec.Data):])
		sec.Data = grown
	}
	return img
}

// Recompile models rebuilding the codebase with a different toolchain:
// the linker version changes and section contents shift slightly. The
// paper notes "in some cases, the different variants also have different
// linker versions, suggesting recompilations".
func Recompile(parent *pe.Image, r *rand.Rand) *pe.Image {
	img := parent.Clone()
	versions := []struct{ major, minor uint8 }{
		{6, 0}, {7, 1}, {8, 0}, {9, 0}, {9, 2}, {10, 0},
	}
	for {
		v := simrng.Pick(r, versions)
		if v.major != img.LinkerMajor || v.minor != img.LinkerMinor {
			img.LinkerMajor, img.LinkerMinor = v.major, v.minor
			break
		}
	}
	// A recompilation perturbs code layout a little.
	if n := len(img.Sections[0].Data); n > 128 {
		tweak := make([]byte, 64)
		r.Read(tweak)
		copy(img.Sections[0].Data[n/2:], tweak)
	}
	return img
}

// Repack models running the binary through a packer: the section layout
// collapses into packer stub sections and the import table shrinks to the
// loader bootstrap imports.
func Repack(parent *pe.Image, r *rand.Rand) *pe.Image {
	img := parent.Clone()
	var payload int
	for _, s := range img.Sections {
		payload += len(s.Data)
	}
	packed := make([]byte, payload/2+r.Intn(payload/4+1))
	r.Read(packed)
	stub := make([]byte, 512)
	r.Read(stub)
	img.Sections = []pe.Section{
		{Name: "UPX0", Data: stub, Characteristics: pe.SectionCode | pe.SectionExecute | pe.SectionRead},
		{Name: "UPX1", Data: packed, Characteristics: pe.SectionInitializedData | pe.SectionRead | pe.SectionWrite},
	}
	img.Imports = []pe.Import{
		{DLL: "KERNEL32.dll", Symbols: []string{"GetProcAddress", "LoadLibraryA", "VirtualAlloc"}},
	}
	return img
}

// AddImport models a code modification that starts referencing extra API
// surface — visible to EPM through the Kernel32 symbol feature.
func AddImport(dll, symbol string) VariantOp {
	return func(parent *pe.Image, r *rand.Rand) *pe.Image {
		img := parent.Clone()
		for i := range img.Imports {
			if img.Imports[i].DLL == dll {
				for _, s := range img.Imports[i].Symbols {
					if s == symbol {
						return img
					}
				}
				img.Imports[i].Symbols = append(img.Imports[i].Symbols, symbol)
				return img
			}
		}
		img.Imports = append(img.Imports, pe.Import{DLL: dll, Symbols: []string{symbol}})
		return img
	}
}

// EngineFor instantiates an engine by ground-truth name; it is the single
// registry the landscape generator uses.
func EngineFor(name string, seed uint64) (Engine, error) {
	switch name {
	case "none", "":
		return None{}, nil
	case "allaple":
		return Allaple{Seed: seed}, nil
	case "per-source":
		return PerSource{Seed: seed}, nil
	default:
		return nil, fmt.Errorf("polymorph: unknown engine %q", name)
	}
}
