package enrich

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/behavior"
	"repro/internal/dataset"
)

// TransientError marks an enrichment failure as retryable: the sandbox
// or the AV oracle was temporarily unavailable, not wrong about the
// sample. The streaming service retries transient failures with backoff
// and quarantines a sample only when a failure is permanent or the
// retry budget is exhausted.
type TransientError struct {
	Err error
}

func (e *TransientError) Error() string { return e.Err.Error() }
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps an error as retryable.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether any error in the chain is a
// TransientError.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// SampleEnricher is the per-sample enrichment surface the fault
// injector wraps — *Pipeline implements it, and it restates
// stream.Enricher (declared there to keep this package independent of
// the service).
type SampleEnricher interface {
	LabelSample(s *dataset.Sample) error
	ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error)
}

// FaultConfig parameterizes injected enrichment failures. All decisions
// are deterministic functions of (Seed, sample MD5, operation, attempt
// number), so a faulty run is exactly reproducible.
type FaultConfig struct {
	// Seed decorrelates fault schedules across runs.
	Seed uint64
	// Rate is the probability in [0,1) that any given attempt fails
	// transiently.
	Rate float64
	// FailFirst fails the first N attempts of every (sample, operation)
	// transiently and lets later attempts through — the
	// fail-N-times-then-succeed schedule.
	FailFirst int
	// Permanent lists sample MD5s whose enrichment always fails with a
	// non-transient error.
	Permanent map[string]bool
}

// FaultyEnricher injects enrichment failures in front of a real
// enricher, for chaos tests. ExecuteSample is called from the service's
// parallel sandbox pool, so the attempt bookkeeping is locked.
type FaultyEnricher struct {
	inner SampleEnricher
	cfg   FaultConfig

	mu        sync.Mutex
	attempts  map[string]int // (op, md5) -> attempts so far
	transient int
	permanent int
}

// NewFaulty wraps an enricher with a fault schedule.
func NewFaulty(inner SampleEnricher, cfg FaultConfig) *FaultyEnricher {
	return &FaultyEnricher{inner: inner, cfg: cfg, attempts: make(map[string]int)}
}

// Injected reports how many transient and permanent failures were
// injected so far.
func (f *FaultyEnricher) Injected() (transient, permanent int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.transient, f.permanent
}

// LabelSample fails according to the schedule, delegating otherwise.
func (f *FaultyEnricher) LabelSample(s *dataset.Sample) error {
	if err := f.fault("label", s.MD5); err != nil {
		return err
	}
	return f.inner.LabelSample(s)
}

// ExecuteSample fails according to the schedule, delegating otherwise.
func (f *FaultyEnricher) ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error) {
	if err := f.fault("execute", s.MD5); err != nil {
		return nil, false, err
	}
	return f.inner.ExecuteSample(s)
}

// fault decides one attempt's fate: permanent MD5s always fail,
// FailFirst covers the first attempts, then the seeded rate applies.
func (f *FaultyEnricher) fault(op, md5 string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := op + ":" + md5
	f.attempts[key]++
	attempt := f.attempts[key]
	if f.cfg.Permanent[md5] {
		f.permanent++
		return fmt.Errorf("enrich: injected permanent %s failure for %s", op, md5)
	}
	if attempt <= f.cfg.FailFirst {
		f.transient++
		return Transient(fmt.Errorf("enrich: injected %s failure %d/%d for %s", op, attempt, f.cfg.FailFirst, md5))
	}
	if f.cfg.Rate > 0 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s|%s|%d", f.cfg.Seed, op, md5, attempt)
		if float64(h.Sum64()%1_000_000)/1_000_000 < f.cfg.Rate {
			f.transient++
			return Transient(fmt.Errorf("enrich: injected %s fault for %s (attempt %d)", op, md5, attempt))
		}
	}
	return nil
}
