package enrich

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/behavior"
	"repro/internal/dataset"
)

type okEnricher struct{}

func (okEnricher) LabelSample(s *dataset.Sample) error {
	s.AVLabel = "OK." + s.MD5
	return nil
}

func (okEnricher) ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error) {
	p := behavior.NewProfile()
	p.Add("beh-" + s.MD5)
	return p, false, nil
}

func TestTransientClassification(t *testing.T) {
	base := errors.New("sandbox timeout")
	if !IsTransient(Transient(base)) {
		t.Fatal("Transient(err) must classify as transient")
	}
	if !errors.Is(Transient(base), base) {
		t.Fatal("Transient must preserve the wrapped error")
	}
	if IsTransient(base) {
		t.Fatal("a bare error is not transient")
	}
	if IsTransient(nil) || Transient(nil) != nil {
		t.Fatal("nil stays nil")
	}
	if !IsTransient(fmt.Errorf("outer: %w", Transient(base))) {
		t.Fatal("transience must survive wrapping")
	}
}

func TestFaultyFailFirstThenSucceeds(t *testing.T) {
	f := NewFaulty(okEnricher{}, FaultConfig{FailFirst: 2})
	s := &dataset.Sample{MD5: "aa", Executable: true}
	for i := 0; i < 2; i++ {
		err := f.LabelSample(s)
		if err == nil || !IsTransient(err) {
			t.Fatalf("attempt %d: err=%v, want transient", i+1, err)
		}
	}
	if err := f.LabelSample(s); err != nil {
		t.Fatalf("attempt 3: %v, want success", err)
	}
	if s.AVLabel != "OK.aa" {
		t.Fatalf("label %q after recovery", s.AVLabel)
	}
	// Operations count attempts independently.
	if _, _, err := f.ExecuteSample(s); err == nil || !IsTransient(err) {
		t.Fatalf("execute attempt 1: %v, want transient", err)
	}
	tr, perm := f.Injected()
	if tr != 3 || perm != 0 {
		t.Fatalf("injected %d/%d, want 3 transient 0 permanent", tr, perm)
	}
}

func TestFaultyPermanent(t *testing.T) {
	f := NewFaulty(okEnricher{}, FaultConfig{FailFirst: 1, Permanent: map[string]bool{"bad": true}})
	bad := &dataset.Sample{MD5: "bad", Executable: true}
	for i := 0; i < 3; i++ {
		err := f.LabelSample(bad)
		if err == nil || IsTransient(err) {
			t.Fatalf("attempt %d on permanent sample: %v, want permanent error", i+1, err)
		}
	}
	good := &dataset.Sample{MD5: "good"}
	if err := f.LabelSample(good); err == nil || !IsTransient(err) {
		t.Fatalf("first attempt on good sample: %v, want transient", err)
	}
	tr, perm := f.Injected()
	if tr != 1 || perm != 3 {
		t.Fatalf("injected %d/%d, want 1 transient 3 permanent", tr, perm)
	}
}

func TestFaultyRateIsDeterministic(t *testing.T) {
	outcomes := func() []bool {
		f := NewFaulty(okEnricher{}, FaultConfig{Seed: 42, Rate: 0.5})
		var out []bool
		for i := 0; i < 200; i++ {
			s := &dataset.Sample{MD5: fmt.Sprintf("md5-%d", i)}
			out = append(out, f.LabelSample(s) != nil)
		}
		return out
	}
	a, b := outcomes(), outcomes()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d: fault schedule not deterministic", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails < 60 || fails > 140 {
		t.Fatalf("rate 0.5 injected %d/200 faults", fails)
	}
}
