// Package enrich implements the information-enrichment pipeline of the
// SGNET dataset: every collected sample is submitted to the dynamic
// analysis sandbox (Anubis stand-in) and to the AV labeling oracle
// (VirusTotal stand-in), and the behavioral profiles are clustered into
// B-clusters.
//
// Substitution note: the real pipeline executes the binary; the
// reproduction resolves the sample's ground-truth behaviour program and
// executes that in the simulated sandbox. The execution *time* is the
// sample's first-seen instant, so environment-dependent behaviour
// (C&C availability, DNS takedowns) varies across samples exactly as in
// the paper.
package enrich

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/avsim"
	"repro/internal/bcluster"
	"repro/internal/behavior"
	"repro/internal/dataset"
	"repro/internal/malgen"
	"repro/internal/sandbox"
	"repro/internal/simrng"
)

// Config parameterizes enrichment.
type Config struct {
	// SandboxBudget is the per-execution time budget (zero selects the
	// 4-minute default).
	SandboxBudget time.Duration
	// BCluster configures behavioral clustering.
	BCluster bcluster.Config
	// AVGenericProb and AVUndetectedProb configure AV label noise.
	AVGenericProb    float64
	AVUndetectedProb float64
	// Workers bounds the sandbox executions running concurrently; 0
	// defers to core.Scenario.Parallelism (and ultimately GOMAXPROCS).
	// Results are identical regardless of the worker count: every
	// execution derives its randomness from the sample hash, not from
	// scheduling order.
	Workers int
}

// DefaultConfig returns production-like enrichment parameters.
func DefaultConfig() Config {
	return Config{
		BCluster:         bcluster.DefaultConfig(),
		AVGenericProb:    0.08,
		AVUndetectedProb: 0.03,
	}
}

// Result is the enrichment outcome.
type Result struct {
	// BClusters is the behavioral clustering over executable samples.
	BClusters *bcluster.Result
	// Executed counts sandbox runs performed.
	Executed int
	// Degraded counts runs that hit the fragility model.
	Degraded int
}

// Pipeline holds the enrichment services so analyses can re-execute
// samples (§4.2 healing).
type Pipeline struct {
	cfg       Config
	landscape *malgen.Landscape
	sandbox   *sandbox.Sandbox
	oracle    *avsim.Oracle
	panel     *avsim.Panel
}

// New builds a pipeline over the given landscape.
func New(l *malgen.Landscape, cfg Config, rng *simrng.Source) (*Pipeline, error) {
	if l == nil {
		return nil, fmt.Errorf("enrich: nil landscape")
	}
	if err := cfg.BCluster.Validate(); err != nil {
		return nil, err
	}
	return &Pipeline{
		cfg:       cfg,
		landscape: l,
		sandbox:   sandbox.New(l.Env, cfg.SandboxBudget, rng.Child("sandbox")),
		oracle:    avsim.New(cfg.AVGenericProb, cfg.AVUndetectedProb),
		panel:     avsim.DefaultPanel(),
	}, nil
}

// Enrich labels every sample, executes every executable sample once, and
// clusters the behavioral profiles. The dataset is updated in place.
// Sandbox executions run on a worker pool (Config.Workers); the outcome
// is independent of the degree of parallelism.
func (p *Pipeline) Enrich(ds *dataset.Dataset) (*Result, error) {
	if ds == nil {
		return nil, fmt.Errorf("enrich: nil dataset")
	}
	res := &Result{}
	samples := ds.Samples()

	// Labeling and executability screening are cheap; do them inline and
	// collect the sandbox work list.
	type job struct {
		sample  *dataset.Sample
		variant *malgen.Variant
	}
	jobs := make([]job, 0, len(samples))
	for _, s := range samples {
		if err := p.LabelSample(s); err != nil {
			return nil, err
		}
		if s.Executable {
			// LabelSample already validated the variant reference.
			jobs = append(jobs, job{sample: s, variant: p.landscape.Variant(s.TruthVariant)})
		}
	}

	workers := p.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	type exec struct {
		report   *sandbox.Report
		features []string
	}
	execs := make([]exec, len(jobs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rep := p.executeVariant(jobs[i].variant, jobs[i].sample)
				execs[i] = exec{report: rep, features: rep.Profile.Features()}
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	inputs := make([]bcluster.Input, 0, len(jobs))
	for i, j := range jobs {
		rep := execs[i].report
		res.Executed++
		if rep.Degraded {
			res.Degraded++
		}
		j.sample.Profile = execs[i].features
		inputs = append(inputs, bcluster.Input{ID: j.sample.MD5, Profile: rep.Profile})
	}
	bres, err := bcluster.Run(inputs, p.cfg.BCluster)
	if err != nil {
		return nil, err
	}
	res.BClusters = bres
	return res, nil
}

// LabelSample assigns the AV oracle and panel labels to one sample. It is
// the per-sample unit of the labeling pass, shared by the batch Enrich
// loop and the streaming service (internal/stream), which labels samples
// as they first appear.
func (p *Pipeline) LabelSample(s *dataset.Sample) error {
	v := p.landscape.Variant(s.TruthVariant)
	if v == nil {
		return fmt.Errorf("enrich: sample %s references unknown variant %q", s.MD5, s.TruthVariant)
	}
	avName := p.avName(v.FamilyName)
	s.AVLabel = p.oracle.Label(avName, s.MD5)
	s.AVLabels = p.panel.Labels(avName, s.MD5)
	return nil
}

// ExecuteSample runs one executable sample through the sandbox at its
// first-seen instant and returns its behavioral profile and whether the
// run degraded. The execution randomness derives from the sample hash
// alone, so the profile is identical whether the sample is executed by
// the batch Enrich pass or incrementally by the streaming service — as
// long as FirstSeen matches.
func (p *Pipeline) ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error) {
	if !s.Executable {
		return nil, false, fmt.Errorf("enrich: sample %s is not executable", s.MD5)
	}
	v := p.landscape.Variant(s.TruthVariant)
	if v == nil {
		return nil, false, fmt.Errorf("enrich: sample %s references unknown variant %q", s.MD5, s.TruthVariant)
	}
	rep := p.executeVariant(v, s)
	return rep.Profile, rep.Degraded, nil
}

// executeVariant is the shared sandbox invocation: it builds both profile
// snapshots on the calling goroutine — the sorted feature list recorded
// on the sample and the interned FeatureSet the B-clustering consumes —
// so each is derived exactly once per profile and reused downstream.
func (p *Pipeline) executeVariant(v *malgen.Variant, s *dataset.Sample) *sandbox.Report {
	rep := p.sandbox.Run(v.Program, s.FirstSeen, s.MD5)
	rep.Profile.FeatureSet()
	return rep
}

// Reexecute runs a sample's program `attempts` times with fresh run keys
// and returns the best profile: the first non-degraded run, or the run
// with the most features when all attempts degrade. This is the §4.2
// healing procedure ("re-running the misconfigured samples multiple times
// is indeed very effective").
func (p *Pipeline) Reexecute(ds *dataset.Dataset, md5 string, attempts int) (*behavior.Profile, bool, error) {
	s := ds.Sample(md5)
	if s == nil {
		return nil, false, fmt.Errorf("enrich: unknown sample %s", md5)
	}
	if !s.Executable {
		return nil, false, fmt.Errorf("enrich: sample %s is not executable", md5)
	}
	v := p.landscape.Variant(s.TruthVariant)
	if v == nil {
		return nil, false, fmt.Errorf("enrich: sample %s references unknown variant %q", md5, s.TruthVariant)
	}
	if attempts < 1 {
		attempts = 1
	}
	var best *behavior.Profile
	healed := false
	for i := 0; i < attempts; i++ {
		rep := p.sandbox.Run(v.Program, s.FirstSeen, fmt.Sprintf("%s/reexec-%d", md5, i))
		if !rep.Degraded {
			best = rep.Profile
			healed = true
			break
		}
		if best == nil || rep.Profile.Len() > best.Len() {
			best = rep.Profile
		}
	}
	s.Profile = best.Features()
	return best, healed, nil
}

// avName resolves a family's AV vendor base name.
func (p *Pipeline) avName(familyName string) string {
	for _, f := range p.landscape.Families {
		if f.Name == familyName {
			return f.AVName
		}
	}
	return ""
}
