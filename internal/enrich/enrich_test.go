package enrich

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/malgen"
	"repro/internal/sgnet"
	"repro/internal/simrng"
)

// buildScenario simulates a small landscape once per test.
func buildScenario(t *testing.T, seed uint64) (*malgen.Landscape, *dataset.Dataset, *Pipeline, *Result) {
	t.Helper()
	rng := simrng.New(seed)
	l, err := malgen.Generate(malgen.SmallConfig(), rng.Child("landscape"))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := sgnet.Simulate(l, sgnet.DefaultConfig(), rng.Child("sgnet"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(l, DefaultConfig(), rng.Child("enrich"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Enrich(sim.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	return l, sim.Dataset, p, res
}

func TestNewValidation(t *testing.T) {
	rng := simrng.New(1)
	if _, err := New(nil, DefaultConfig(), rng); err == nil {
		t.Error("nil landscape must error")
	}
	l, err := malgen.Generate(malgen.SmallConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.BCluster.NumHashes = 0
	if _, err := New(l, bad, rng); err == nil {
		t.Error("invalid bcluster config must error")
	}
}

func TestEnrichLabelsAndProfiles(t *testing.T) {
	_, ds, _, res := buildScenario(t, 1)

	executable, labeled, profiled := 0, 0, 0
	for _, s := range ds.Samples() {
		if s.AVLabel != "" {
			labeled++
		}
		if s.Executable {
			executable++
			if len(s.Profile) > 0 {
				profiled++
			}
		} else if len(s.Profile) != 0 {
			t.Errorf("non-executable sample %s has a profile", s.MD5)
		}
	}
	if executable == 0 {
		t.Fatal("no executable samples")
	}
	if profiled != executable {
		t.Errorf("profiled %d of %d executable samples", profiled, executable)
	}
	if labeled < ds.SampleCount()/2 {
		t.Errorf("only %d of %d samples labeled", labeled, ds.SampleCount())
	}
	if res.Executed != executable {
		t.Errorf("Executed = %d, want %d", res.Executed, executable)
	}
	if res.BClusters == nil || len(res.BClusters.Clusters) == 0 {
		t.Fatal("no B-clusters")
	}
}

func TestWormLabelsAreRahack(t *testing.T) {
	l, ds, _, _ := buildScenario(t, 2)
	worm := l.Families[0]
	rahack, other := 0, 0
	for _, s := range ds.Samples() {
		if s.TruthFamily != worm.Name || s.AVLabel == "" {
			continue
		}
		if strings.HasPrefix(s.AVLabel, "W32.Rahack") {
			rahack++
		} else {
			other++
		}
	}
	if rahack == 0 {
		t.Fatal("no Rahack labels for worm samples")
	}
	if other > rahack/2 {
		t.Errorf("too much label noise: %d Rahack vs %d other", rahack, other)
	}
}

func TestWormBehaviorCollapsesToFewClusters(t *testing.T) {
	l, ds, _, res := buildScenario(t, 3)
	worm := l.Families[0]

	// Count distinct B-clusters holding non-degraded worm samples. Degraded
	// runs produce singletons by design; the bulk must land in at most two
	// clusters (the two behaviour generations).
	clusterCounts := map[int]int{}
	for _, s := range ds.Samples() {
		if s.TruthFamily != worm.Name || !s.Executable {
			continue
		}
		if c := res.BClusters.ClusterOf(s.MD5); c >= 0 {
			clusterCounts[c]++
		}
	}
	big := 0
	bigMembers := 0
	total := 0
	for _, n := range clusterCounts {
		total += n
		if n >= 5 {
			big++
			bigMembers += n
		}
	}
	if big == 0 || big > 2 {
		t.Errorf("worm samples form %d big B-clusters, want 1-2 (counts: %d clusters)", big, len(clusterCounts))
	}
	if float64(bigMembers) < 0.5*float64(total) {
		t.Errorf("only %d of %d worm samples in big clusters", bigMembers, total)
	}
}

func TestDegradedRunsBecomeSingletons(t *testing.T) {
	_, _, _, res := buildScenario(t, 4)
	if res.Degraded == 0 {
		t.Fatal("no degraded executions; fragility model inactive")
	}
	singles := len(res.BClusters.Singletons())
	if singles == 0 {
		t.Fatal("no singleton B-clusters despite degraded runs")
	}
	// Most B-clusters should be singletons, as in the paper (860 of 972).
	if frac := float64(singles) / float64(len(res.BClusters.Clusters)); frac < 0.4 {
		t.Errorf("singleton fraction = %.2f; expected singletons to dominate", frac)
	}
}

func TestReexecuteHealsDegradedProfiles(t *testing.T) {
	l, ds, p, res := buildScenario(t, 5)
	worm := l.Families[0]

	healedCount, tried := 0, 0
	for _, c := range res.BClusters.Singletons() {
		md5 := c.Members[0]
		s := ds.Sample(md5)
		if s.TruthFamily != worm.Name {
			continue
		}
		tried++
		profile, healed, err := p.Reexecute(ds, md5, 5)
		if err != nil {
			t.Fatal(err)
		}
		if healed {
			healedCount++
			// A healed worm profile must contain the family's stable
			// behaviour.
			if !profile.Has("scan|tcp/445") {
				t.Errorf("healed profile of %s missing worm scan feature: %v", md5, profile.Features())
			}
		}
		if len(s.Profile) == 0 {
			t.Error("Reexecute must update the stored profile")
		}
	}
	if tried == 0 {
		t.Skip("no worm singletons in this seed")
	}
	// Fragility ~0.17: five attempts heal with probability ~1-0.17^5.
	if healedCount == 0 {
		t.Error("re-execution healed nothing")
	}
}

func TestReexecuteErrors(t *testing.T) {
	_, ds, p, _ := buildScenario(t, 6)
	if _, _, err := p.Reexecute(ds, "no-such-md5", 3); err == nil {
		t.Error("unknown sample must error")
	}
	for _, s := range ds.Samples() {
		if !s.Executable {
			if _, _, err := p.Reexecute(ds, s.MD5, 3); err == nil {
				t.Error("non-executable sample must error")
			}
			break
		}
	}
}

func TestEnrichParallelMatchesSerial(t *testing.T) {
	build := func(workers int) (*dataset.Dataset, *Result) {
		rng := simrng.New(11)
		l, err := malgen.Generate(malgen.SmallConfig(), rng.Child("landscape"))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := sgnet.Simulate(l, sgnet.DefaultConfig(), rng.Child("sgnet"))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Workers = workers
		p, err := New(l, cfg, rng.Child("enrich"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Enrich(sim.Dataset)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Dataset, res
	}
	dsSerial, resSerial := build(1)
	dsParallel, resParallel := build(8)

	if len(resSerial.BClusters.Clusters) != len(resParallel.BClusters.Clusters) {
		t.Fatalf("B-cluster counts differ: %d vs %d",
			len(resSerial.BClusters.Clusters), len(resParallel.BClusters.Clusters))
	}
	if resSerial.Degraded != resParallel.Degraded {
		t.Fatalf("degraded counts differ: %d vs %d", resSerial.Degraded, resParallel.Degraded)
	}
	ss, sp := dsSerial.Samples(), dsParallel.Samples()
	for i := range ss {
		if len(ss[i].Profile) != len(sp[i].Profile) {
			t.Fatalf("sample %s profile differs between serial and parallel enrichment", ss[i].MD5)
		}
		for j := range ss[i].Profile {
			if ss[i].Profile[j] != sp[i].Profile[j] {
				t.Fatalf("sample %s profile feature %d differs", ss[i].MD5, j)
			}
		}
	}
}

func TestEnrichDeterminism(t *testing.T) {
	_, ds1, _, res1 := buildScenario(t, 7)
	_, ds2, _, res2 := buildScenario(t, 7)
	if len(res1.BClusters.Clusters) != len(res2.BClusters.Clusters) {
		t.Fatalf("B-cluster counts differ: %d vs %d", len(res1.BClusters.Clusters), len(res2.BClusters.Clusters))
	}
	s1, s2 := ds1.Samples(), ds2.Samples()
	for i := range s1 {
		if s1[i].AVLabel != s2[i].AVLabel {
			t.Fatalf("AV label differs for %s", s1[i].MD5)
		}
		if len(s1[i].Profile) != len(s2[i].Profile) {
			t.Fatalf("profile differs for %s", s1[i].MD5)
		}
	}
}
