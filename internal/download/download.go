// Package download emulates the malware-transfer protocols of the
// Nepenthes download modules: after shellcode analysis recovers the
// download instructions, the honeypot performs (or accepts) the actual
// transfer. Each protocol is emulated at message level — control dialogs,
// data blocks, status codes — and failures are injected inside the
// protocol (a refused login, a missing file, a connection cut mid-body),
// which is where the paper's truncated and corrupted samples come from.
package download

import (
	"fmt"
	"math/rand"

	"repro/internal/shellcode"
)

// Direction tags a transcript message.
type Direction int

// Message directions relative to the victim (the honeypot).
const (
	// Sent is victim-to-peer traffic.
	Sent Direction = iota
	// Received is peer-to-victim traffic.
	Received
)

// Message is one protocol exchange of the transfer.
type Message struct {
	Dir  Direction
	Data []byte
	// Note is a human-readable tag ("RETR", "DATA block 3", "200 OK").
	Note string
}

// Transcript records one emulated transfer.
type Transcript struct {
	Protocol string
	Messages []Message
	Outcome  shellcode.DownloadOutcome
}

func (t *Transcript) send(note string, data []byte) {
	t.Messages = append(t.Messages, Message{Dir: Sent, Data: data, Note: note})
}

func (t *Transcript) recv(note string, data []byte) {
	t.Messages = append(t.Messages, Message{Dir: Received, Data: data, Note: note})
}

// Block sizes per protocol.
const (
	ftpBlock  = 1024
	httpBlock = 1460
	tftpBlock = 512
	rawBlock  = 2048
)

// Run performs one emulated transfer: it returns the bytes the victim
// stored, the outcome, and the protocol transcript. The failure model is
// applied inside the protocol: a failed transfer aborts before any
// payload flows, a truncated one cuts the data stream midway.
func Run(action shellcode.Action, payload []byte, fm shellcode.FailureModel, r *rand.Rand) ([]byte, *Transcript, error) {
	tr := &Transcript{Protocol: action.Protocol}

	// Outcome draw mirrors the abstract failure model so both emulation
	// layers agree on rates.
	x := r.Float64()
	fail := x < fm.FailProb
	truncate := !fail && x < fm.FailProb+fm.TruncateProb && len(payload) > 4
	cut := len(payload)
	if truncate {
		cut = len(payload)/4 + r.Intn(len(payload)/2)
	}

	var stored []byte
	switch action.Protocol {
	case "ftp":
		stored = ftpTransfer(tr, action, payload, fail, cut, r)
	case "http":
		stored = httpTransfer(tr, action, payload, fail, cut)
	case "tftp":
		stored = tftpTransfer(tr, action, payload, fail, cut)
	case "csend", "creceive", "blink":
		stored = rawTransfer(tr, action, payload, fail, cut)
	default:
		return nil, nil, fmt.Errorf("download: unknown protocol %q", action.Protocol)
	}

	switch {
	case fail:
		tr.Outcome = shellcode.DownloadFailed
		stored = nil
	case truncate:
		tr.Outcome = shellcode.DownloadTruncated
	default:
		tr.Outcome = shellcode.DownloadOK
	}
	return stored, tr, nil
}

// chunked streams payload in blocks, stopping at cut, and reports how
// many bytes actually flowed.
func chunked(tr *Transcript, note string, payload []byte, block, cut int) []byte {
	var out []byte
	for off := 0; off < len(payload); off += block {
		end := off + block
		if end > len(payload) {
			end = len(payload)
		}
		if off >= cut {
			tr.recv("connection reset", nil)
			return out
		}
		if end > cut {
			end = cut
		}
		tr.recv(fmt.Sprintf("%s block %d (%d bytes)", note, off/block+1, end-off), payload[off:end])
		out = append(out, payload[off:end]...)
		if end == cut && cut < len(payload) {
			tr.recv("connection reset", nil)
			return out
		}
	}
	return out
}

// ftpTransfer emulates an RFC-959 control dialog plus a passive-mode data
// connection.
func ftpTransfer(tr *Transcript, action shellcode.Action, payload []byte, fail bool, cut int, r *rand.Rand) []byte {
	tr.recv("220 banner", []byte("220 ftp ready\r\n"))
	tr.send("USER", []byte("USER anonymous\r\n"))
	tr.recv("331", []byte("331 password required\r\n"))
	tr.send("PASS", []byte("PASS guest@\r\n"))
	if fail {
		tr.recv("530", []byte("530 login incorrect\r\n"))
		return nil
	}
	tr.recv("230", []byte("230 user logged in\r\n"))
	tr.send("TYPE", []byte("TYPE I\r\n"))
	tr.recv("200", []byte("200 type set to I\r\n"))
	tr.send("PASV", []byte("PASV\r\n"))
	p1 := 128 + r.Intn(64)
	p2 := r.Intn(256)
	tr.recv("227", []byte(fmt.Sprintf("227 entering passive mode (%s,%d,%d)\r\n",
		commaIP(action.Source.String()), p1, p2)))
	tr.send("RETR", []byte("RETR "+action.Filename+"\r\n"))
	tr.recv("150", []byte("150 opening data connection\r\n"))
	out := chunked(tr, "DATA", payload, ftpBlock, cut)
	if len(out) == len(payload) {
		tr.recv("226", []byte("226 transfer complete\r\n"))
	}
	return out
}

func commaIP(dotted string) string {
	out := make([]byte, 0, len(dotted))
	for i := 0; i < len(dotted); i++ {
		if dotted[i] == '.' {
			out = append(out, ',')
		} else {
			out = append(out, dotted[i])
		}
	}
	return string(out)
}

// httpTransfer emulates an HTTP/1.0 GET.
func httpTransfer(tr *Transcript, action shellcode.Action, payload []byte, fail bool, cut int) []byte {
	tr.send("GET", []byte(fmt.Sprintf("GET /%s HTTP/1.0\r\nHost: %s\r\n\r\n",
		action.Filename, action.Source)))
	if fail {
		tr.recv("404", []byte("HTTP/1.0 404 Not Found\r\n\r\n"))
		return nil
	}
	tr.recv("200", []byte(fmt.Sprintf(
		"HTTP/1.0 200 OK\r\nContent-Type: application/octet-stream\r\nContent-Length: %d\r\n\r\n",
		len(payload))))
	return chunked(tr, "BODY", payload, httpBlock, cut)
}

// tftpTransfer emulates RFC-1350 read requests: 512-byte DATA blocks,
// each acknowledged; a short final block terminates the transfer.
func tftpTransfer(tr *Transcript, action shellcode.Action, payload []byte, fail bool, cut int) []byte {
	tr.send("RRQ", []byte(action.Filename+"\x00octet\x00"))
	if fail {
		tr.recv("ERROR", []byte("\x00\x05\x00\x01file not found\x00"))
		return nil
	}
	var out []byte
	block := 1
	for off := 0; ; off += tftpBlock {
		end := off + tftpBlock
		if end > len(payload) {
			end = len(payload)
		}
		if off > cut || (off >= cut && cut < len(payload)) {
			tr.recv("timeout", nil)
			return out
		}
		capped := end
		if capped > cut {
			capped = cut
		}
		tr.recv(fmt.Sprintf("DATA %d (%d bytes)", block, capped-off), payload[off:capped])
		out = append(out, payload[off:capped]...)
		tr.send(fmt.Sprintf("ACK %d", block), []byte{0, 4, byte(block >> 8), byte(block)})
		if capped < end || end-off < tftpBlock || end == len(payload) {
			if capped < end {
				tr.recv("timeout", nil)
			}
			return out
		}
		block++
	}
}

// rawTransfer emulates the Nepenthes-specific transfer protocols
// (csend/creceive/blink): a length prefix followed by the raw bytes.
func rawTransfer(tr *Transcript, action shellcode.Action, payload []byte, fail bool, cut int) []byte {
	header := []byte{
		byte(len(payload) >> 24), byte(len(payload) >> 16),
		byte(len(payload) >> 8), byte(len(payload)),
	}
	if action.Interaction == shellcode.Push {
		tr.recv("push header", header)
	} else {
		tr.send("fetch request", []byte(action.Protocol))
		tr.recv("length header", header)
	}
	if fail {
		tr.recv("connection refused", nil)
		return nil
	}
	return chunked(tr, "RAW", payload, rawBlock, cut)
}
