package download

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/netmodel"
	"repro/internal/shellcode"
	"repro/internal/simrng"
)

func action(proto string, interaction shellcode.Interaction) shellcode.Action {
	return shellcode.Action{
		Protocol:    proto,
		Interaction: interaction,
		Port:        21,
		Filename:    "ftpupd.exe",
		Source:      netmodel.MustParseIP("198.51.100.7"),
	}
}

func payload(n int) []byte {
	p := make([]byte, n)
	simrng.New(1).Stream("payload").Read(p)
	return p
}

func TestAllProtocolsDeliverFullPayload(t *testing.T) {
	r := simrng.New(2).Stream("dl")
	pl := payload(5000)
	for _, proto := range []string{"ftp", "http", "tftp", "csend", "creceive", "blink"} {
		t.Run(proto, func(t *testing.T) {
			interaction := shellcode.Pull
			if proto == "csend" {
				interaction = shellcode.Push
			}
			stored, tr, err := Run(action(proto, interaction), pl, shellcode.FailureModel{}, r)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Outcome != shellcode.DownloadOK {
				t.Fatalf("outcome = %v", tr.Outcome)
			}
			if !bytes.Equal(stored, pl) {
				t.Fatalf("stored %d bytes, want %d intact", len(stored), len(pl))
			}
			if len(tr.Messages) < 2 {
				t.Fatalf("transcript too short: %d messages", len(tr.Messages))
			}
		})
	}
}

func TestUnknownProtocol(t *testing.T) {
	r := simrng.New(2).Stream("dl")
	if _, _, err := Run(action("gopher", shellcode.Pull), payload(100), shellcode.FailureModel{}, r); err == nil {
		t.Error("unknown protocol must error")
	}
}

func TestFailuresAbortBeforePayload(t *testing.T) {
	r := simrng.New(3).Stream("dl")
	pl := payload(4000)
	for _, proto := range []string{"ftp", "http", "tftp", "creceive"} {
		t.Run(proto, func(t *testing.T) {
			stored, tr, err := Run(action(proto, shellcode.Pull), pl, shellcode.FailureModel{FailProb: 1}, r)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Outcome != shellcode.DownloadFailed || stored != nil {
				t.Fatalf("outcome = %v, stored = %d bytes", tr.Outcome, len(stored))
			}
			// No payload bytes may appear anywhere in the transcript.
			for _, m := range tr.Messages {
				if len(m.Data) > 64 {
					t.Errorf("failed transfer leaked a %d-byte message (%s)", len(m.Data), m.Note)
				}
			}
		})
	}
}

func TestTruncationCutsMidStream(t *testing.T) {
	r := simrng.New(4).Stream("dl")
	pl := payload(20000)
	for _, proto := range []string{"ftp", "http", "tftp", "csend"} {
		t.Run(proto, func(t *testing.T) {
			for i := 0; i < 10; i++ {
				stored, tr, err := Run(action(proto, shellcode.Pull), pl, shellcode.FailureModel{TruncateProb: 1}, r)
				if err != nil {
					t.Fatal(err)
				}
				if tr.Outcome != shellcode.DownloadTruncated {
					t.Fatalf("outcome = %v", tr.Outcome)
				}
				if len(stored) == 0 || len(stored) >= len(pl) {
					t.Fatalf("truncated stored %d of %d bytes", len(stored), len(pl))
				}
				if !bytes.Equal(stored, pl[:len(stored)]) {
					t.Fatal("truncated bytes are not a prefix")
				}
			}
		})
	}
}

func TestFTPDialogShape(t *testing.T) {
	r := simrng.New(5).Stream("dl")
	_, tr, err := Run(action("ftp", shellcode.Pull), payload(3000), shellcode.FailureModel{}, r)
	if err != nil {
		t.Fatal(err)
	}
	var notes []string
	for _, m := range tr.Messages {
		notes = append(notes, m.Note)
	}
	joined := strings.Join(notes, " ")
	for _, want := range []string{"220", "USER", "331", "PASS", "230", "TYPE", "PASV", "227", "RETR", "150", "226"} {
		if !strings.Contains(joined, want) {
			t.Errorf("FTP dialog missing %s: %v", want, notes)
		}
	}
	// The RETR command must carry the requested filename.
	found := false
	for _, m := range tr.Messages {
		if m.Note == "RETR" && strings.Contains(string(m.Data), "ftpupd.exe") {
			found = true
		}
	}
	if !found {
		t.Error("RETR does not request the shellcode's filename")
	}
}

func TestHTTPHeaders(t *testing.T) {
	r := simrng.New(6).Stream("dl")
	pl := payload(3000)
	_, tr, err := Run(action("http", shellcode.Central), pl, shellcode.FailureModel{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tr.Messages[0].Data), "GET /ftpupd.exe HTTP/1.0") {
		t.Errorf("request line wrong: %q", tr.Messages[0].Data)
	}
	if !strings.Contains(string(tr.Messages[1].Data), fmt.Sprintf("Content-Length: %d", len(pl))) {
		t.Errorf("content length missing: %q", tr.Messages[1].Data)
	}
}

func TestTFTPBlockNumbers(t *testing.T) {
	r := simrng.New(7).Stream("dl")
	pl := payload(1300) // 3 blocks: 512+512+276
	stored, tr, err := Run(action("tftp", shellcode.Pull), pl, shellcode.FailureModel{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stored, pl) {
		t.Fatal("payload mismatch")
	}
	acks := 0
	for _, m := range tr.Messages {
		if strings.HasPrefix(m.Note, "ACK") {
			acks++
		}
	}
	if acks != 3 {
		t.Errorf("acks = %d, want 3", acks)
	}
}

func TestRawPushDirection(t *testing.T) {
	r := simrng.New(8).Stream("dl")
	_, tr, err := Run(action("csend", shellcode.Push), payload(100), shellcode.FailureModel{}, r)
	if err != nil {
		t.Fatal(err)
	}
	// A push starts with the peer sending, not the victim requesting.
	if tr.Messages[0].Dir != Received {
		t.Errorf("push transfer starts with %v message (%s)", tr.Messages[0].Dir, tr.Messages[0].Note)
	}
}

func TestOutcomeRates(t *testing.T) {
	r := simrng.New(9).Stream("dl")
	pl := payload(4096)
	fm := shellcode.FailureModel{TruncateProb: 0.15, FailProb: 0.05}
	counts := map[shellcode.DownloadOutcome]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		_, tr, err := Run(action("http", shellcode.Pull), pl, fm, r)
		if err != nil {
			t.Fatal(err)
		}
		counts[tr.Outcome]++
	}
	if f := float64(counts[shellcode.DownloadFailed]) / n; f < 0.03 || f > 0.08 {
		t.Errorf("fail rate = %.3f", f)
	}
	if tr := float64(counts[shellcode.DownloadTruncated]) / n; tr < 0.11 || tr > 0.19 {
		t.Errorf("truncate rate = %.3f", tr)
	}
}

func BenchmarkRunFTP(b *testing.B) {
	r := simrng.New(10).Stream("dl")
	pl := payload(59904)
	a := action("ftp", shellcode.Pull)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(a, pl, shellcode.FailureModel{}, r); err != nil {
			b.Fatal(err)
		}
	}
}
