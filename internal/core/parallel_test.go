package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bcluster"
	"repro/internal/epm"
)

// digest renders every parallelism-sensitive artifact of a run — cluster
// IDs, patterns, member lists, context counts, and the headline counts —
// into one comparable string.
func digest(r *Results) string {
	var b strings.Builder
	events, samples, executable, e, p, m, bc := r.Counts()
	fmt.Fprintf(&b, "counts %d %d %d %d %d %d %d\n", events, samples, executable, e, p, m, bc)
	epmDim := func(c *epm.Clustering) {
		for _, st := range c.Stats {
			fmt.Fprintf(&b, "stat %s %s %d %d\n", c.Schema.Dimension, st.Feature, st.Invariants, st.DistinctValues)
		}
		for _, cl := range c.Clusters {
			fmt.Fprintf(&b, "cluster %s %d %s %d %d %s\n",
				c.Schema.Dimension, cl.ID, cl.Pattern.Key(), cl.Attackers, cl.Sensors,
				strings.Join(cl.InstanceIDs, ","))
		}
	}
	epmDim(r.E)
	epmDim(r.P)
	epmDim(r.M)
	bDim := func(res *bcluster.Result) {
		fmt.Fprintf(&b, "bstats %d %d %d\n", res.Stats.Samples, res.Stats.CandidatePairs, res.Stats.Links)
		for _, cl := range res.Clusters {
			fmt.Fprintf(&b, "bcluster %d %s\n", cl.ID, strings.Join(cl.Members, ","))
		}
	}
	bDim(r.B)
	return b.String()
}

// TestRunParallelismDeterminism asserts that the pipeline output is
// byte-identical whether every worker pool is pinned to one goroutine or
// fanned out over eight.
func TestRunParallelismDeterminism(t *testing.T) {
	scenarios := map[string]Scenario{"small": SmallScenario()}
	if !testing.Short() {
		// A mid-size landscape between SmallScenario and the paper-scale
		// default, big enough for multi-shard Phase-3 grouping.
		mid := SmallScenario()
		mid.Landscape.WormVariants = 45
		mid.Landscape.BotFamilies = 6
		mid.Landscape.DropperFamilies = 9
		mid.Landscape.RareFamilies = 14
		scenarios["mid"] = mid
	}
	for name, s := range scenarios {
		s := s
		t.Run(name, func(t *testing.T) {
			seq := s
			seq.Parallelism = 1
			par := s
			par.Parallelism = 8

			a, err := Run(seq)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(par)
			if err != nil {
				t.Fatal(err)
			}
			da, db := digest(a), digest(b)
			if da != db {
				line := firstDiffLine(da, db)
				t.Fatalf("results differ between Parallelism 1 and 8; first differing line:\n%s", line)
			}
		})
	}
}

func firstDiffLine(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("seq: %s\npar: %s", la[i], lb[i])
		}
	}
	return fmt.Sprintf("line counts differ: %d vs %d", len(la), len(lb))
}
