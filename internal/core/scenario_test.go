package core

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestScenarioRoundTrip(t *testing.T) {
	s := SmallScenario()
	s.Seed = 12345
	s.Landscape.WormVariants = 7
	var buf bytes.Buffer
	if err := SaveScenario(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 12345 || got.Landscape.WormVariants != 7 {
		t.Errorf("round trip lost values: %+v", got)
	}
	if got.Deployment.Locations != s.Deployment.Locations {
		t.Error("deployment lost")
	}
}

func TestLoadScenarioPartialOverride(t *testing.T) {
	// Overriding one knob keeps defaults elsewhere.
	in := `{"Seed": 99, "Landscape": {"WormVariants": 20, "WormPopMin": 5, "WormPopMax": 40, "WormHitRate": 0.01, "WormFragility": 0.1, "PerSourcePopulation": 9, "BotFamilies": 1, "BotMaxVariants": 2, "DropperFamilies": 1, "RareFamilies": 1}}`
	got, err := LoadScenario(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 99 || got.Landscape.WormVariants != 20 {
		t.Errorf("overrides lost: %+v", got)
	}
	def := DefaultScenario()
	if got.Deployment.Locations != def.Deployment.Locations {
		t.Error("deployment default lost")
	}
	if got.Thresholds != def.Thresholds {
		t.Error("thresholds default lost")
	}
}

func TestLoadScenarioRejects(t *testing.T) {
	cases := map[string]string{
		"garbage":       "{nope",
		"unknown field": `{"Bogus": 1}`,
		"invalid value": `{"Landscape": {"WormVariants": 0}}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadScenario(strings.NewReader(in)); err == nil {
				t.Error("LoadScenario accepted bad input")
			}
		})
	}
}

func TestLoadScenarioFile(t *testing.T) {
	if _, err := LoadScenarioFile("/nonexistent/scenario.json"); err == nil {
		t.Error("missing file must error")
	}
}

func TestValidateScenario(t *testing.T) {
	if err := ValidateScenario(DefaultScenario()); err != nil {
		t.Error(err)
	}
	bad := DefaultScenario()
	bad.Deployment.Locations = 0
	if err := ValidateScenario(bad); err == nil {
		t.Error("invalid deployment must fail")
	}
	bad = DefaultScenario()
	bad.Thresholds.MinSensors = 0
	if err := ValidateScenario(bad); err == nil {
		t.Error("invalid thresholds must fail")
	}
	bad = DefaultScenario()
	bad.Enrichment.BCluster.Bands = 0
	if err := ValidateScenario(bad); err == nil {
		t.Error("invalid bcluster config must fail")
	}
}

func TestSaveScenarioToFileAndLoad(t *testing.T) {
	path := t.TempDir() + "/scenario.json"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	s := SmallScenario()
	s.Seed = 321
	if err := SaveScenario(f, s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenarioFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 321 {
		t.Errorf("Seed = %d", got.Seed)
	}
}
