package core

import (
	"testing"
)

// TestPaperCalibration asserts the headline reproduction bands on the
// full default scenario. It is the regression net for EXPERIMENTS.md:
// any change that drifts the calibration out of the paper's neighborhood
// fails here. Skipped under -short (the run takes tens of seconds).
func TestPaperCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("default scenario is expensive; run without -short")
	}
	res, err := Run(DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	_, samples, executable, e, p, m, b := res.Counts()

	between := func(name string, got, lo, hi int) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %d outside calibration band [%d, %d] (paper-anchored)", name, got, lo, hi)
		}
	}
	// Paper values: 6353 samples, 5165 executable, 39 E, 27 P, 260 M,
	// 972 B, 860 size-1. Bands allow drift without losing the shape.
	between("samples", samples, 5400, 7200)
	between("executable", executable, 4400, 6000)
	between("E-clusters", e, 25, 48)
	between("P-clusters", p, 18, 35)
	between("M-clusters", m, 215, 330)
	between("B-clusters", b, 760, 1150)

	ratio := float64(executable) / float64(samples)
	if ratio < 0.72 || ratio > 0.9 {
		t.Errorf("executable ratio = %.3f outside [0.72, 0.90] (paper: 0.813)", ratio)
	}
	singles := len(res.B.Singletons())
	if frac := float64(singles) / float64(b); frac < 0.8 || frac > 0.98 {
		t.Errorf("singleton fraction = %.3f outside [0.80, 0.98] (paper: 0.885)", frac)
	}
	// Structural orderings of §4.1.
	if !(e < m && p < m && m < b) {
		t.Errorf("cluster ordering broken: E=%d P=%d M=%d B=%d", e, p, m, b)
	}
}
