package core

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/malgen"
)

// runSmall caches one small pipeline run across subtests.
func runSmall(t *testing.T) *Results {
	t.Helper()
	res, err := Run(SmallScenario())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunSmallScenario(t *testing.T) {
	res := runSmall(t)
	events, samples, executable, e, p, m, b := res.Counts()

	if events == 0 || samples == 0 {
		t.Fatalf("empty run: %d events, %d samples", events, samples)
	}
	if executable >= samples {
		t.Errorf("executable (%d) must be < samples (%d) under failure injection", executable, samples)
	}
	if e == 0 || p == 0 || m == 0 || b == 0 {
		t.Fatalf("missing clusterings: E=%d P=%d M=%d B=%d", e, p, m, b)
	}
	// The structural shape of §4.1: few E and P clusters, many more M
	// clusters; B dominated by singletons.
	if m <= e || m <= p {
		t.Errorf("M-clusters (%d) must exceed E (%d) and P (%d)", m, e, p)
	}
	singles := len(res.B.Singletons())
	if float64(singles) < 0.4*float64(b) {
		t.Errorf("singleton B-clusters = %d of %d; artifact population missing", singles, b)
	}
}

func TestRunInvalidScenario(t *testing.T) {
	s := SmallScenario()
	s.Landscape.WormVariants = 0
	if _, err := Run(s); err == nil {
		t.Error("invalid landscape config must fail")
	}
	s = SmallScenario()
	s.Deployment.Locations = 0
	if _, err := Run(s); err == nil {
		t.Error("invalid deployment config must fail")
	}
	s = SmallScenario()
	s.Enrichment.BCluster.NumHashes = 7 // not a multiple of bands
	if _, err := Run(s); err == nil {
		t.Error("invalid enrichment config must fail")
	}
	s = SmallScenario()
	s.Thresholds.MinInstances = 0
	if _, err := Run(s); err == nil {
		t.Error("invalid thresholds must fail")
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(SmallScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(SmallScenario())
	if err != nil {
		t.Fatal(err)
	}
	eventsA, _, _, _, _, _, _ := a.Counts()
	eventsB, _, _, _, _, _, _ := b.Counts()
	if eventsA != eventsB {
		t.Fatalf("event counts differ: %d vs %d", eventsA, eventsB)
	}
	if len(a.M.Clusters) != len(b.M.Clusters) || len(a.B.Clusters) != len(b.B.Clusters) {
		t.Error("cluster counts differ across identical scenarios")
	}
}

func TestEndToEndPaperPhenomena(t *testing.T) {
	res := runSmall(t)

	// 1. The worm's per-source sibling shares E and P clusters with it
	// (code sharing visible in the propagation vector).
	worm := res.Landscape.Families[0]
	var wormE, wormP, psE, psP = -1, -1, -1, -1
	for _, e := range res.Dataset.Events() {
		switch e.TruthFamily {
		case worm.Name:
			if wormE < 0 {
				wormE = res.E.ClusterOf(e.ID)
				wormP = res.P.ClusterOf(e.ID)
			}
		case malgen.PerSourceFamilyName:
			if psE < 0 {
				psE = res.E.ClusterOf(e.ID)
				psP = res.P.ClusterOf(e.ID)
			}
		}
	}
	if wormE < 0 || psE < 0 {
		t.Fatal("missing worm or per-source events")
	}
	if wormE != psE {
		t.Errorf("worm E-cluster %d != per-source E-cluster %d; propagation vector must be shared", wormE, psE)
	}
	if wormP != psP {
		t.Errorf("worm P-cluster %d != per-source P-cluster %d", wormP, psP)
	}

	// 2. The per-source M-cluster pattern has everything invariant except
	// the MD5 (the §4.2 M-cluster 13 listing).
	var psSample string
	for _, s := range res.Dataset.Samples() {
		if s.TruthFamily == malgen.PerSourceFamilyName && s.Executable {
			psSample = s.MD5
			break
		}
	}
	if psSample == "" {
		t.Fatal("no per-source sample")
	}
	mIdx := res.CrossMap.SampleM[psSample]
	pattern := res.M.Clusters[mIdx].Pattern
	if pattern.Values[0] != "*" {
		t.Errorf("per-source MD5 feature = %q, want wildcard", pattern.Values[0])
	}
	wildcards := 0
	for _, v := range pattern.Values {
		if v == "*" {
			wildcards++
		}
	}
	if wildcards != 1 {
		t.Errorf("per-source pattern has %d wildcards, want only the MD5: %v", wildcards, pattern.Values)
	}
	if pattern.Values[7] != "92" {
		t.Errorf("linker version = %q, want 92", pattern.Values[7])
	}

	// 3. The per-source M-cluster splits into multiple B-clusters
	// (environment-dependent behaviour).
	if got := len(res.CrossMap.MtoB[mIdx]); got < 2 {
		t.Errorf("per-source M-cluster maps to %d B-clusters, want >= 2", got)
	}

	// 4. Size-1 anomaly detection fires and is dominated by the worm.
	rep, err := analysis.FindSize1Anomalies(res.Dataset, res.E, res.P, res.B, res.CrossMap)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Anomalous) == 0 {
		t.Error("no size-1 anomalies detected")
	}
	top := analysis.TopCounts(rep.AVNames, 1)
	if len(top) == 0 || !strings.HasPrefix(top[0].K, "W32.Rahack") {
		t.Errorf("anomaly AV dominance = %+v", top)
	}

	// 5. IRC correlation recovers at least one multi-M-cluster channel or
	// shared subnet (Table 2 structure).
	rows, err := analysis.IRCCorrelation(res.Dataset, res.CrossMap)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no IRC correlation rows")
	}
}
