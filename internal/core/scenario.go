package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SaveScenario writes a scenario as indented JSON.
func SaveScenario(w io.Writer, s Scenario) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("core: encoding scenario: %w", err)
	}
	return nil
}

// LoadScenario reads a scenario from JSON, applying defaults for absent
// sections so a file may override only the knobs it cares about.
func LoadScenario(r io.Reader) (Scenario, error) {
	s := DefaultScenario()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("core: decoding scenario: %w", err)
	}
	if err := ValidateScenario(s); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// LoadScenarioFile reads a scenario from a JSON file.
func LoadScenarioFile(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("core: opening scenario: %w", err)
	}
	defer f.Close()
	return LoadScenario(f)
}

// ValidateScenario runs every component validation without executing the
// pipeline.
func ValidateScenario(s Scenario) error {
	if err := s.Landscape.Validate(); err != nil {
		return err
	}
	if err := s.Deployment.Validate(); err != nil {
		return err
	}
	if err := s.Enrichment.BCluster.Validate(); err != nil {
		return err
	}
	return s.Thresholds.Validate()
}
