// Package core wires the full reproduction pipeline: landscape generation
// → deployment simulation → information enrichment → EPM and behavioral
// clustering → cross-perspective joins.
//
// It is the public façade the binaries, examples, and benchmarks build
// on: one Scenario in, one Results out, deterministic under the scenario
// seed.
package core

import (
	"fmt"
	"sync"

	"repro/internal/analysis"
	"repro/internal/bcluster"
	"repro/internal/dataset"
	"repro/internal/enrich"
	"repro/internal/epm"
	"repro/internal/malgen"
	"repro/internal/sgnet"
	"repro/internal/simrng"
)

// Scenario is a complete experiment configuration.
type Scenario struct {
	// Seed drives every stochastic decision; equal scenarios reproduce
	// byte-identical results.
	Seed uint64
	// Landscape scales the ground-truth malware ecosystem.
	Landscape malgen.Config
	// Deployment configures the honeypot deployment.
	Deployment sgnet.Config
	// Enrichment configures sandboxing, AV labeling, and B-clustering.
	Enrichment enrich.Config
	// Thresholds configure EPM invariant discovery.
	Thresholds epm.Thresholds
	// Parallelism bounds the worker pools of every pipeline stage (EPM
	// invariant discovery and grouping, sandbox enrichment, MinHash
	// signature construction, and B-cluster candidate verification);
	// 0 selects GOMAXPROCS. Stage-level worker settings
	// (Enrichment.Workers, Enrichment.BCluster.Workers), when nonzero,
	// take precedence. Results are byte-identical at every level.
	Parallelism int
}

// DefaultScenario is the paper-scale configuration used by the
// experiments harness.
func DefaultScenario() Scenario {
	return Scenario{
		Seed:       2010,
		Landscape:  malgen.DefaultConfig(),
		Deployment: sgnet.DefaultConfig(),
		Enrichment: enrich.DefaultConfig(),
		Thresholds: epm.DefaultThresholds(),
	}
}

// SmallScenario is a fast configuration for tests and the quickstart
// example.
func SmallScenario() Scenario {
	s := DefaultScenario()
	s.Landscape = malgen.SmallConfig()
	return s
}

// Results bundles every artifact of a pipeline run.
type Results struct {
	Scenario   Scenario
	Landscape  *malgen.Landscape
	Simulation *sgnet.Result
	Dataset    *dataset.Dataset
	Pipeline   *enrich.Pipeline
	Enrichment *enrich.Result

	// E, P, M are the EPM clusterings of the three dimensions.
	E, P, M *epm.Clustering
	// B is the behavioral clustering.
	B *bcluster.Result
	// CrossMap joins the static and behavioral perspectives.
	CrossMap *analysis.CrossMap
}

// Prepare executes the generation and simulation prefix of Run: it
// generates the landscape, simulates the deployment, and builds the
// enrichment pipeline, all seeded exactly as Run seeds them. The
// streaming service (internal/stream) replays sim.Dataset events through
// the returned pipeline to converge on the same results the batch Run
// produces; Run itself continues from here with the batch enrichment.
func Prepare(s Scenario) (*malgen.Landscape, *sgnet.Result, *enrich.Pipeline, error) {
	rng := simrng.New(s.Seed)

	enrichCfg := s.Enrichment
	if enrichCfg.Workers == 0 {
		enrichCfg.Workers = s.Parallelism
	}
	if enrichCfg.BCluster.Workers == 0 {
		enrichCfg.BCluster.Workers = s.Parallelism
	}

	landscape, err := malgen.Generate(s.Landscape, rng.Child("landscape"))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: generating landscape: %w", err)
	}
	sim, err := sgnet.Simulate(landscape, s.Deployment, rng.Child("sgnet"))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: simulating deployment: %w", err)
	}
	pipe, err := enrich.New(landscape, enrichCfg, rng.Child("enrich"))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: building enrichment: %w", err)
	}
	return landscape, sim, pipe, nil
}

// Run executes the full pipeline. The three EPM clusterings are the
// paper's independent observation perspectives — they share no state, so
// they run concurrently; Scenario.Parallelism additionally bounds the
// worker pools inside every stage. The output is deterministic under the
// scenario seed at any parallelism level.
func Run(s Scenario) (*Results, error) {
	landscape, sim, pipe, err := Prepare(s)
	if err != nil {
		return nil, err
	}
	enriched, err := pipe.Enrich(sim.Dataset)
	if err != nil {
		return nil, fmt.Errorf("core: enriching dataset: %w", err)
	}

	res := &Results{
		Scenario:   s,
		Landscape:  landscape,
		Simulation: sim,
		Dataset:    sim.Dataset,
		Pipeline:   pipe,
		Enrichment: enriched,
		B:          enriched.BClusters,
	}
	var wg sync.WaitGroup
	var errE, errP, errM error
	wg.Add(3)
	go func() {
		defer wg.Done()
		res.E, errE = epm.RunParallel(dataset.EpsilonSchema, sim.Dataset.EpsilonInstances(), s.Thresholds, s.Parallelism)
	}()
	go func() {
		defer wg.Done()
		res.P, errP = epm.RunParallel(dataset.PiSchema, sim.Dataset.PiInstances(), s.Thresholds, s.Parallelism)
	}()
	go func() {
		defer wg.Done()
		res.M, errM = epm.RunParallel(dataset.MuSchema, sim.Dataset.MuInstances(), s.Thresholds, s.Parallelism)
	}()
	wg.Wait()
	if errE != nil {
		return nil, fmt.Errorf("core: epsilon clustering: %w", errE)
	}
	if errP != nil {
		return nil, fmt.Errorf("core: pi clustering: %w", errP)
	}
	if errM != nil {
		return nil, fmt.Errorf("core: mu clustering: %w", errM)
	}
	if res.CrossMap, err = analysis.BuildCrossMap(sim.Dataset, res.M, res.B); err != nil {
		return nil, fmt.Errorf("core: cross map: %w", err)
	}
	return res, nil
}

// Counts extracts the §4.1 headline numbers.
func (r *Results) Counts() (events, samples, executable, e, p, m, b int) {
	return r.Dataset.EventCount(),
		r.Dataset.SampleCount(),
		r.Dataset.ExecutableSampleCount(),
		len(r.E.Clusters),
		len(r.P.Clusters),
		len(r.M.Clusters),
		len(r.B.Clusters)
}
