package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bcluster"
	"repro/internal/behavior"
	"repro/internal/dataset"
	"repro/internal/epm"
)

// Enricher is the per-sample enrichment contract RunEvents consumes. It
// is structurally identical to stream.Enricher, so the same
// implementation (an *enrich.Pipeline or a synthetic test enricher) can
// drive a streaming replay and its batch reference run.
type Enricher interface {
	LabelSample(s *dataset.Sample) error
	ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error)
}

// EventResults bundles the artifacts of a RunEvents pass.
type EventResults struct {
	Dataset *dataset.Dataset
	// E, P, M are the EPM clusterings of the three dimensions.
	E, P, M *epm.Clustering
	// B is the behavioral clustering over the executable samples.
	B *bcluster.Result
	// Executed and Degraded count the sandbox runs.
	Executed, Degraded int
}

// RunEvents runs the batch analysis pipeline over an arbitrary event
// list: load the events into a dataset, label every sample, execute
// every executable sample through the enricher, cluster behaviors, and
// cluster the three EPM dimensions. It is the batch reference for
// workloads that do not come from a generated landscape — most notably
// the overload smoke, which compares a pressured streaming service's
// final state against RunEvents over the events the service admitted.
// The output is deterministic in (events, enricher) at any parallelism.
func RunEvents(events []dataset.Event, enricher Enricher, th epm.Thresholds, bcfg bcluster.Config, parallelism int) (*EventResults, error) {
	if enricher == nil {
		return nil, fmt.Errorf("core: nil enricher")
	}
	ds := dataset.New()
	for _, e := range events {
		if err := ds.AddEvent(e); err != nil {
			return nil, fmt.Errorf("core: loading event %s: %w", e.ID, err)
		}
	}

	samples := ds.Samples()
	execList := make([]*dataset.Sample, 0, len(samples))
	for _, smp := range samples {
		if err := enricher.LabelSample(smp); err != nil {
			return nil, fmt.Errorf("core: labeling sample %s: %w", smp.MD5, err)
		}
		if smp.Executable {
			execList = append(execList, smp)
		}
	}

	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(execList) && len(execList) > 0 {
		workers = len(execList)
	}
	type outcome struct {
		profile  *behavior.Profile
		degraded bool
		err      error
	}
	outs := make([]outcome, len(execList))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				p, d, err := enricher.ExecuteSample(execList[i])
				outs[i] = outcome{profile: p, degraded: d, err: err}
			}
		}()
	}
	for i := range execList {
		next <- i
	}
	close(next)
	wg.Wait()

	res := &EventResults{Dataset: ds}
	inputs := make([]bcluster.Input, 0, len(execList))
	for i, smp := range execList {
		if outs[i].err != nil {
			return nil, fmt.Errorf("core: executing sample %s: %w", smp.MD5, outs[i].err)
		}
		res.Executed++
		if outs[i].degraded {
			res.Degraded++
		}
		smp.Profile = outs[i].profile.Features()
		inputs = append(inputs, bcluster.Input{ID: smp.MD5, Profile: outs[i].profile})
	}
	b, err := bcluster.Run(inputs, bcfg)
	if err != nil {
		return nil, fmt.Errorf("core: behavioral clustering: %w", err)
	}
	res.B = b

	var errE, errP, errM error
	wg.Add(3)
	go func() {
		defer wg.Done()
		res.E, errE = epm.RunParallel(dataset.EpsilonSchema, ds.EpsilonInstances(), th, parallelism)
	}()
	go func() {
		defer wg.Done()
		res.P, errP = epm.RunParallel(dataset.PiSchema, ds.PiInstances(), th, parallelism)
	}()
	go func() {
		defer wg.Done()
		res.M, errM = epm.RunParallel(dataset.MuSchema, ds.MuInstances(), th, parallelism)
	}()
	wg.Wait()
	if errE != nil {
		return nil, fmt.Errorf("core: epsilon clustering: %w", errE)
	}
	if errP != nil {
		return nil, fmt.Errorf("core: pi clustering: %w", errP)
	}
	if errM != nil {
		return nil, fmt.Errorf("core: mu clustering: %w", errM)
	}
	return res, nil
}
