package behavior

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFeatureHashMatchesFNV(t *testing.T) {
	for _, s := range []string{"", "a", "irc|1.2.3.4:6667|#kok6", "file-create|C:\\x.exe"} {
		h := fnv.New64a()
		_, _ = h.Write([]byte(s))
		if got, want := FeatureHash(s), h.Sum64(); got != want {
			t.Errorf("FeatureHash(%q) = %#x, want FNV-1a %#x", s, got, want)
		}
	}
}

func TestFeatureSetSortedDeduped(t *testing.T) {
	fs := NewFeatureSet([]string{"b", "a", "c", "a", "b"})
	if len(fs) != 3 {
		t.Fatalf("len = %d, want 3 (deduplicated)", len(fs))
	}
	for i := 1; i < len(fs); i++ {
		if fs[i-1] >= fs[i] {
			t.Fatalf("not strictly sorted at %d: %v", i, fs)
		}
	}
}

func TestProfileFeatureSetMatchesNewFeatureSet(t *testing.T) {
	p := NewProfile()
	for _, f := range []string{"x", "y", "z"} {
		p.Add(f)
	}
	a, b := p.FeatureSet(), NewFeatureSet(p.Features())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("element %d differs", i)
		}
	}
}

// TestFeatureSetJaccardMatchesProfile is the differential property test
// behind the bcluster hot-path swap: the merge-based Jaccard over
// interned hash sets must agree with the map-based Profile.Jaccard on
// random profiles, including the empty/disjoint/identical corners.
func TestFeatureSetJaccardMatchesProfile(t *testing.T) {
	mk := func(fs []string) *Profile {
		p := NewProfile()
		for _, f := range fs {
			p.Add(f)
		}
		return p
	}
	diff := func(as, bs []string) bool {
		a, b := mk(as), mk(bs)
		return math.Abs(a.Jaccard(b)-a.FeatureSet().Jaccard(b.FeatureSet())) < 1e-12
	}
	if err := quick.Check(diff, nil); err != nil {
		t.Error(err)
	}

	// Structured random profiles with heavy overlap, where the merge path
	// actually exercises interleaved runs rather than disjoint ranges.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a, b := NewProfile(), NewProfile()
		for k := 0; k < r.Intn(40); k++ {
			f := fmt.Sprintf("shared-%d", r.Intn(30))
			a.Add(f)
			b.Add(f)
		}
		for k := 0; k < r.Intn(10); k++ {
			a.Add(fmt.Sprintf("a-%d", r.Intn(20)))
		}
		for k := 0; k < r.Intn(10); k++ {
			b.Add(fmt.Sprintf("b-%d", r.Intn(20)))
		}
		want, got := a.Jaccard(b), a.FeatureSet().Jaccard(b.FeatureSet())
		if math.Abs(want-got) > 1e-12 {
			t.Fatalf("trial %d: Profile.Jaccard = %v, FeatureSet.Jaccard = %v", trial, want, got)
		}
	}

	// Explicit corners.
	cases := []struct {
		a, b []string
		want float64
	}{
		{nil, nil, 1},
		{[]string{"x"}, nil, 0},
		{[]string{"x"}, []string{"y"}, 0},
		{[]string{"x", "y"}, []string{"x", "y"}, 1},
	}
	for _, c := range cases {
		got := NewFeatureSet(c.a).Jaccard(NewFeatureSet(c.b))
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaccard(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestProfileSnapshotCaching pins the built-once contract: the sorted
// snapshot and the feature set are cached, callers own the Features
// copy, and Add invalidates both caches.
func TestProfileSnapshotCaching(t *testing.T) {
	p := NewProfile()
	p.Add("b")
	p.Add("a")
	f1 := p.Features()
	f1[0] = "mutated"
	if got := p.Features(); got[0] != "a" || got[1] != "b" {
		t.Errorf("caller mutation leaked into cached snapshot: %v", got)
	}
	s1 := p.FeatureSet()
	p.Add("c")
	if got := p.Features(); len(got) != 3 || got[2] != "c" {
		t.Errorf("Add did not invalidate sorted snapshot: %v", got)
	}
	if s2 := p.FeatureSet(); len(s2) != 3 {
		t.Errorf("Add did not invalidate feature set: %v (old %v)", s2, s1)
	}
	// Adding a duplicate must not invalidate (and must not grow) anything.
	p.Add("c")
	if got := p.FeatureSet(); len(got) != 3 {
		t.Errorf("duplicate Add changed feature set: %v", got)
	}
}

func TestParseIRCFeatureRejectsMalformedPorts(t *testing.T) {
	bad := []string{
		"irc|1.2.3.4:6667x|#room",                 // trailing garbage, silently accepted by Sscanf
		"irc|1.2.3.4:66 67|#room",                 // embedded space
		"irc|1.2.3.4:+6667|#room",                 // explicit sign is not a port
		"irc|1.2.3.4:-1|#room",                    // negative
		"irc|1.2.3.4:65536|#room",                 // above the port range
		"irc|1.2.3.4:999999999999999999999|#room", // overflow
		"irc|1.2.3.4:|#room",                      // empty port
	}
	for _, f := range bad {
		if _, port, _, ok := ParseIRCFeature(f); ok {
			t.Errorf("ParseIRCFeature(%q) accepted with port %d", f, port)
		}
	}
	if server, port, room, ok := ParseIRCFeature("irc|h:65535|#r"); !ok || server != "h" || port != 65535 || room != "#r" {
		t.Errorf("ParseIRCFeature rejected the top of the port range: %q %d %q %v", server, port, room, ok)
	}
}
