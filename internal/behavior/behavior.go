// Package behavior defines malware behavior programs and behavioral
// profiles.
//
// A behavior program is the ground-truth "source code" of a malware
// family: the sequence of host and network operations the sample performs
// when executed. The sandbox (internal/sandbox) interprets programs
// against a simulated OS and network environment and emits a behavioral
// profile — the abstract feature-set representation used by the Anubis
// clustering of Bayer et al. (NDSS'09) that the paper builds on.
package behavior

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// OpKind enumerates the operation types a behavior program can perform.
type OpKind int

// Operation kinds. The set mirrors the behavioral-profile feature classes
// of the Anubis system: file system, registry, synchronization, process,
// and network activity.
const (
	// OpCreateFile creates a file at Path.
	OpCreateFile OpKind = iota + 1
	// OpWriteFile writes to the file at Path.
	OpWriteFile
	// OpDeleteFile removes the file at Path.
	OpDeleteFile
	// OpSetRegistry writes the registry value named by Path.
	OpSetRegistry
	// OpCreateMutex creates a named mutex. With Volatile set the name is
	// randomized per execution — a profile noise source.
	OpCreateMutex
	// OpCreateProcess spawns the process named by Path.
	OpCreateProcess
	// OpDNSResolve resolves Host; fails when the environment has no entry.
	OpDNSResolve
	// OpTCPConnect opens a TCP connection to Host:Port; fails when the
	// environment marks the endpoint unreachable.
	OpTCPConnect
	// OpHTTPDownload downloads Host+Path and, on success, executes the
	// nested Payload program (a downloaded component).
	OpHTTPDownload
	// OpIRCConnect joins IRC room Channel on Host:Port and executes
	// commands received from the bot-herder (the nested Payload).
	OpIRCConnect
	// OpScanNetwork scans the network on Port looking for victims.
	OpScanNetwork
	// OpInfectHTML appends exploit frames to local HTML files (Allaple).
	OpInfectHTML
	// OpDoS floods the target named by Host.
	OpDoS
	// OpSleep idles; long sleeps can exhaust the sandbox execution budget.
	OpSleep
)

var opKindNames = map[OpKind]string{
	OpCreateFile:    "file-create",
	OpWriteFile:     "file-write",
	OpDeleteFile:    "file-delete",
	OpSetRegistry:   "registry-set",
	OpCreateMutex:   "mutex-create",
	OpCreateProcess: "process-create",
	OpDNSResolve:    "dns-resolve",
	OpTCPConnect:    "tcp-connect",
	OpHTTPDownload:  "http-download",
	OpIRCConnect:    "irc-connect",
	OpScanNetwork:   "scan",
	OpInfectHTML:    "infect-html",
	OpDoS:           "dos",
	OpSleep:         "sleep",
}

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one operation of a behavior program.
type Op struct {
	Kind OpKind
	// Path names the file, registry value, mutex, or process the op
	// touches, depending on Kind.
	Path string
	// Host is the network peer (domain name or dotted address).
	Host string
	// Port is the network port for connect/scan operations.
	Port int
	// Channel is the IRC room name for OpIRCConnect.
	Channel string
	// Payload is the nested program run when a download or C&C exchange
	// succeeds.
	Payload *Program
	// OnFailSkip is the number of following ops to skip when this op
	// fails; it encodes the simple conditional control flow malware uses
	// ("if the C&C is unreachable, skip the command loop").
	OnFailSkip int
	// Volatile marks ops whose emitted profile feature embeds per-run
	// randomness (e.g. random mutex names); these are the clustering noise
	// sources discussed in §4.2 of the paper.
	Volatile bool
	// Seconds is the duration for OpSleep.
	Seconds int
}

// Program is a named sequence of operations.
type Program struct {
	Name string
	Ops  []Op
	// Fragility is the per-execution probability that the run degrades:
	// the sample crashes after a random prefix of its operations and the
	// profile picks up run-specific noise features. This models the
	// profile variability that, combined with clustering thresholds,
	// produces the single-sample B-cluster artifacts of §4.2.
	Fragility float64
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	if p == nil {
		return nil
	}
	out := &Program{Name: p.Name, Ops: make([]Op, len(p.Ops)), Fragility: p.Fragility}
	copy(out.Ops, p.Ops)
	for i := range out.Ops {
		out.Ops[i].Payload = out.Ops[i].Payload.Clone()
	}
	return out
}

// Validate checks structural constraints on the program.
func (p *Program) Validate() error {
	if p == nil {
		return fmt.Errorf("behavior: nil program")
	}
	if p.Fragility < 0 || p.Fragility > 1 {
		return fmt.Errorf("behavior: %s fragility %v outside [0,1]", p.Name, p.Fragility)
	}
	for i, op := range p.Ops {
		if op.Kind < OpCreateFile || op.Kind > OpSleep {
			return fmt.Errorf("behavior: %s op %d has invalid kind %d", p.Name, i, op.Kind)
		}
		if op.OnFailSkip < 0 {
			return fmt.Errorf("behavior: %s op %d has negative OnFailSkip", p.Name, i)
		}
		if op.OnFailSkip > len(p.Ops)-i-1 {
			return fmt.Errorf("behavior: %s op %d skips %d ops but only %d follow",
				p.Name, i, op.OnFailSkip, len(p.Ops)-i-1)
		}
		if op.Payload != nil {
			if err := op.Payload.Validate(); err != nil {
				return fmt.Errorf("behavior: %s op %d payload: %w", p.Name, i, err)
			}
		}
	}
	return nil
}

// Profile is a behavioral profile: the set of abstract features observed
// during one sandbox execution of a sample.
//
// A profile is built by the sandbox (Add) and then consumed read-only by
// the enrichment and clustering layers. The sorted snapshot (Features)
// and the interned hash set (FeatureSet) are computed once on first use
// and cached; Add invalidates the cache. The cache is safe under
// concurrent readers, matching the bcluster worker pools.
type Profile struct {
	features map[string]struct{}

	mu     sync.Mutex
	sorted []string
	set    FeatureSet
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{features: make(map[string]struct{})}
}

// Add inserts a feature into the profile.
func (p *Profile) Add(feature string) {
	if _, ok := p.features[feature]; ok {
		return
	}
	p.features[feature] = struct{}{}
	p.mu.Lock()
	p.sorted, p.set = nil, nil
	p.mu.Unlock()
}

// Has reports whether the profile contains the feature.
func (p *Profile) Has(feature string) bool {
	_, ok := p.features[feature]
	return ok
}

// Len reports the number of distinct features.
func (p *Profile) Len() int {
	return len(p.features)
}

// Features returns the sorted feature list. The sort runs once per
// profile; subsequent calls copy the cached snapshot, so callers own the
// returned slice.
func (p *Profile) Features() []string {
	p.mu.Lock()
	if p.sorted == nil {
		p.sorted = make([]string, 0, len(p.features))
		for f := range p.features {
			p.sorted = append(p.sorted, f)
		}
		sort.Strings(p.sorted)
	}
	out := make([]string, len(p.sorted))
	copy(out, p.sorted)
	p.mu.Unlock()
	return out
}

// FeatureSet returns the profile's interned hash set, built once per
// profile and cached. The returned slice is shared and must be treated
// as read-only; it is the representation the B-clustering hot path
// (Jaccard verification and MinHash signatures) operates on.
func (p *Profile) FeatureSet() FeatureSet {
	p.mu.Lock()
	if p.set == nil {
		fs := make(FeatureSet, 0, len(p.features))
		for f := range p.features {
			fs = append(fs, FeatureHash(f))
		}
		fs.normalize()
		p.set = fs
	}
	out := p.set
	p.mu.Unlock()
	return out
}

// Jaccard computes the Jaccard similarity |A∩B| / |A∪B| between two
// profiles; two empty profiles have similarity 1.
func (p *Profile) Jaccard(q *Profile) float64 {
	if p.Len() == 0 && q.Len() == 0 {
		return 1
	}
	small, large := p.features, q.features
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for f := range small {
		if _, ok := large[f]; ok {
			inter++
		}
	}
	union := len(p.features) + len(q.features) - inter
	return float64(inter) / float64(union)
}

// Feature constructors. All profile features funnel through these helpers
// so the sandbox and the tests agree on the exact encoding.

// FeatureOp renders a host-side operation feature.
func FeatureOp(kind OpKind, object string) string {
	return kind.String() + "|" + object
}

// FeatureNet renders a network operation feature with an outcome tag
// ("ok"/"fail"). Outcome is part of the feature because the paper's §4.2
// anomalies stem precisely from environment-dependent outcome changes.
func FeatureNet(kind OpKind, endpoint string, ok bool) string {
	outcome := "ok"
	if !ok {
		outcome = "fail"
	}
	return kind.String() + "|" + endpoint + "|" + outcome
}

// FeatureIRC renders an IRC command-and-control feature.
func FeatureIRC(server string, port int, room string) string {
	return fmt.Sprintf("irc|%s:%d|%s", server, port, room)
}

// ParseIRCFeature decodes a feature produced by FeatureIRC, reporting
// ok=false for any other feature. The analysis layer uses it to recover
// Table 2 (IRC server/room vs M-cluster) from raw profiles.
func ParseIRCFeature(f string) (server string, port int, room string, ok bool) {
	if !strings.HasPrefix(f, "irc|") {
		return "", 0, "", false
	}
	parts := strings.SplitN(f[len("irc|"):], "|", 2)
	if len(parts) != 2 {
		return "", 0, "", false
	}
	host, portStr, found := strings.Cut(parts[0], ":")
	if !found {
		return "", 0, "", false
	}
	// strconv.Atoi over the full port string: unlike the fmt.Sscanf("%d")
	// this replaces, it is allocation-free on the Table-2 analysis path
	// and rejects trailing garbage ("6667x") instead of silently
	// truncating it. FeatureIRC only ever renders bare digits, so signed
	// forms are rejected too.
	if portStr == "" || portStr[0] == '+' || portStr[0] == '-' {
		return "", 0, "", false
	}
	p, err := strconv.Atoi(portStr)
	if err != nil || p <= 0 || p > 65535 {
		return "", 0, "", false
	}
	return host, p, parts[1], true
}
