package behavior

import "sort"

// FeatureHash returns the 64-bit FNV-1a hash of a feature string — the
// interned integer representation used by FeatureSet and by the bcluster
// MinHash signatures. Inlined (rather than hash/fnv) so the per-feature
// cost is a tight loop with no allocation.
func FeatureHash(f string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(f); i++ {
		h ^= uint64(f[i])
		h *= prime64
	}
	return h
}

// FeatureSet is the interned integer representation of a behavioral
// profile: the sorted, deduplicated set of 64-bit feature hashes. It is
// the hot-path currency of the B-clustering — Jaccard similarity becomes
// a linear merge over two sorted uint64 slices instead of a string-map
// intersection, and MinHash signatures are derived from the precomputed
// hashes instead of re-hashing every feature string.
//
// Two distinct features collide only when their FNV-64 hashes collide
// (probability ~2⁻⁶⁴ per pair), in which case the set is one element
// smaller than the profile; the differential tests against the map-based
// Jaccard make this trade explicit.
type FeatureSet []uint64

// NewFeatureSet interns the given features. The result is sorted and
// deduplicated.
func NewFeatureSet(features []string) FeatureSet {
	fs := make(FeatureSet, 0, len(features))
	for _, f := range features {
		fs = append(fs, FeatureHash(f))
	}
	fs.normalize()
	return fs
}

// normalize sorts the set and drops duplicate hashes in place.
func (fs *FeatureSet) normalize() {
	s := *fs
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	out := s[:0]
	for i, h := range s {
		if i == 0 || h != s[i-1] {
			out = append(out, h)
		}
	}
	*fs = out
}

// Jaccard computes |A∩B| / |A∪B| by merging the two sorted hash sets;
// two empty sets have similarity 1, mirroring Profile.Jaccard.
func (fs FeatureSet) Jaccard(other FeatureSet) float64 {
	if len(fs) == 0 && len(other) == 0 {
		return 1
	}
	i, j, inter := 0, 0, 0
	for i < len(fs) && j < len(other) {
		a, b := fs[i], other[j]
		switch {
		case a == b:
			inter++
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	union := len(fs) + len(other) - inter
	return float64(inter) / float64(union)
}
