package behavior

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleProgram() *Program {
	return &Program{
		Name: "test-bot",
		Ops: []Op{
			{Kind: OpCreateFile, Path: `C:\WINDOWS\system32\svhost.exe`},
			{Kind: OpSetRegistry, Path: `HKLM\Software\Microsoft\Windows\CurrentVersion\Run\svhost`},
			{Kind: OpDNSResolve, Host: "cnc.example.net", OnFailSkip: 2},
			{Kind: OpTCPConnect, Host: "cnc.example.net", Port: 6667, OnFailSkip: 1},
			{Kind: OpIRCConnect, Host: "cnc.example.net", Port: 6667, Channel: "#kok6",
				Payload: &Program{Name: "commands", Ops: []Op{
					{Kind: OpScanNetwork, Port: 445},
				}}},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := sampleProgram().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Program)
	}{
		{"nil program", nil},
		{"bad kind", func(p *Program) { p.Ops[0].Kind = 0 }},
		{"kind too large", func(p *Program) { p.Ops[0].Kind = OpSleep + 1 }},
		{"negative skip", func(p *Program) { p.Ops[0].OnFailSkip = -1 }},
		{"skip past end", func(p *Program) { p.Ops[len(p.Ops)-1].OnFailSkip = 1 }},
		{"invalid payload", func(p *Program) { p.Ops[4].Payload.Ops[0].Kind = 99 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.mutate == nil {
				var p *Program
				if err := p.Validate(); err == nil {
					t.Error("nil program must fail validation")
				}
				return
			}
			p := sampleProgram()
			tt.mutate(p)
			if err := p.Validate(); err == nil {
				t.Error("Validate accepted an invalid program")
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := sampleProgram()
	c := p.Clone()
	c.Ops[0].Path = "mutated"
	c.Ops[4].Payload.Ops[0].Port = 9999
	if p.Ops[0].Path == "mutated" {
		t.Error("Clone shares op slice")
	}
	if p.Ops[4].Payload.Ops[0].Port == 9999 {
		t.Error("Clone shares nested payload")
	}
	var nilP *Program
	if nilP.Clone() != nil {
		t.Error("Clone of nil must be nil")
	}
}

func TestProfileBasics(t *testing.T) {
	p := NewProfile()
	if p.Len() != 0 {
		t.Fatal("new profile not empty")
	}
	p.Add("b")
	p.Add("a")
	p.Add("a") // duplicate
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	if !p.Has("a") || p.Has("c") {
		t.Error("Has misbehaves")
	}
	got := p.Features()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Features = %v, want sorted [a b]", got)
	}
}

func TestJaccard(t *testing.T) {
	mk := func(fs ...string) *Profile {
		p := NewProfile()
		for _, f := range fs {
			p.Add(f)
		}
		return p
	}
	tests := []struct {
		name string
		a, b *Profile
		want float64
	}{
		{"identical", mk("x", "y"), mk("x", "y"), 1},
		{"disjoint", mk("x"), mk("y"), 0},
		{"half", mk("x", "y"), mk("y", "z"), 1.0 / 3},
		{"both empty", mk(), mk(), 1},
		{"one empty", mk("x"), mk(), 0},
		{"subset", mk("x", "y", "z", "w"), mk("x", "y"), 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Jaccard(tt.b); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("Jaccard = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestJaccardProperties(t *testing.T) {
	mk := func(fs []string) *Profile {
		p := NewProfile()
		for _, f := range fs {
			p.Add(f)
		}
		return p
	}
	// Symmetry and range.
	f := func(as, bs []string) bool {
		a, b := mk(as), mk(bs)
		ab, ba := a.Jaccard(b), b.Jaccard(a)
		return ab == ba && ab >= 0 && ab <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Self-similarity is 1.
	g := func(as []string) bool {
		a := mk(as)
		return a.Jaccard(a) == 1
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestOpKindString(t *testing.T) {
	if OpCreateFile.String() != "file-create" {
		t.Errorf("OpCreateFile = %q", OpCreateFile.String())
	}
	if OpIRCConnect.String() != "irc-connect" {
		t.Errorf("OpIRCConnect = %q", OpIRCConnect.String())
	}
	if OpKind(99).String() != "OpKind(99)" {
		t.Errorf("unknown kind = %q", OpKind(99).String())
	}
}

func TestFeatureConstructors(t *testing.T) {
	if got := FeatureOp(OpCreateMutex, "jhdheruk"); got != "mutex-create|jhdheruk" {
		t.Errorf("FeatureOp = %q", got)
	}
	if got := FeatureNet(OpDNSResolve, "iliketay.cn", false); got != "dns-resolve|iliketay.cn|fail" {
		t.Errorf("FeatureNet = %q", got)
	}
	if got := FeatureNet(OpTCPConnect, "1.2.3.4:80", true); got != "tcp-connect|1.2.3.4:80|ok" {
		t.Errorf("FeatureNet ok = %q", got)
	}
}

func TestIRCFeatureRoundTrip(t *testing.T) {
	f := FeatureIRC("67.43.232.36", 6667, "#kok6")
	server, port, room, ok := ParseIRCFeature(f)
	if !ok || server != "67.43.232.36" || port != 6667 || room != "#kok6" {
		t.Errorf("ParseIRCFeature(%q) = %q %d %q %v", f, server, port, room, ok)
	}
}

func TestParseIRCFeatureRejects(t *testing.T) {
	bad := []string{
		"file-create|x",
		"irc|noport|#room",
		"irc|1.2.3.4:0|#room",
		"irc|1.2.3.4:abc|#room",
		"irc|1.2.3.4:6667",
		"",
	}
	for _, f := range bad {
		if _, _, _, ok := ParseIRCFeature(f); ok {
			t.Errorf("ParseIRCFeature(%q) accepted", f)
		}
	}
}
